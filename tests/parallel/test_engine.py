"""ParallelBatchStudy: bit-identity, telemetry folding, lifecycle.

The determinism tests are the PR's acceptance criterion: responses,
frequencies and aging deltas must be bit-identical to the serial engine
for any worker count, including counts that do not divide the chip
count.  They run at deliberately small scale (tiny designs, few chips)
so the full matrix stays cheap even though every case spins up a real
process pool.
"""

import numpy as np
import pytest

from repro import aro_design, conventional_design
from repro.core.population import make_batch_study
from repro.environment.conditions import OperatingConditions, celsius
from repro import telemetry
from repro.parallel import ParallelBatchStudy, make_parallel_study

DESIGN = aro_design(n_ros=16, n_stages=3)
SEED = 987


@pytest.fixture(scope="module")
def serial_8():
    return make_batch_study(DESIGN, 8, rng=SEED)


@pytest.fixture(scope="module")
def serial_7():
    return make_batch_study(DESIGN, 7, rng=SEED)


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("t", [0.0, 10.0])
    def test_divisible_chip_count(self, serial_8, jobs, t):
        with make_parallel_study(DESIGN, 8, rng=SEED, jobs=jobs) as par:
            assert np.array_equal(
                serial_8.responses(t_years=t), par.responses(t_years=t)
            )
            assert np.array_equal(
                serial_8.frequencies(t_years=t), par.frequencies(t_years=t)
            )

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("t", [0.0, 10.0])
    def test_non_divisible_chip_count(self, serial_7, jobs, t):
        with make_parallel_study(DESIGN, 7, rng=SEED, jobs=jobs) as par:
            assert np.array_equal(
                serial_7.responses(t_years=t), par.responses(t_years=t)
            )
            assert np.array_equal(
                serial_7.frequencies(t_years=t), par.frequencies(t_years=t)
            )

    def test_corner_conditions(self, serial_7):
        """Identity holds off-nominal too (temperature + supply corner)."""
        cond = OperatingConditions(temperature_k=celsius(85.0), vdd=1.1)
        with make_parallel_study(DESIGN, 7, rng=SEED, jobs=3) as par:
            assert np.array_equal(
                serial_7.frequencies(5.0, cond), par.frequencies(5.0, cond)
            )

    def test_aging_deltas_identical(self, serial_7):
        """The derived quantity the paper gates on: fresh-vs-aged flips."""
        with make_parallel_study(DESIGN, 7, rng=SEED, jobs=2) as par:
            flips_serial = serial_7.responses() != serial_7.responses(
                t_years=10.0
            )
            flips_par = par.responses() != par.responses(t_years=10.0)
            assert np.array_equal(flips_serial, flips_par)

    def test_conventional_design_too(self):
        design = conventional_design(n_ros=16, n_stages=3)
        serial = make_batch_study(design, 5, rng=SEED)
        with make_parallel_study(design, 5, rng=SEED, jobs=2) as par:
            assert np.array_equal(serial.responses(), par.responses())


class TestFactoryAndLifecycle:
    def test_jobs_one_returns_serial_engine(self):
        study = make_parallel_study(DESIGN, 4, rng=SEED, jobs=1)
        assert not isinstance(study, ParallelBatchStudy)
        study.close()  # serial close is a no-op but must exist

    def test_jobs_zero_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            make_parallel_study(DESIGN, 4, rng=SEED, jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            ParallelBatchStudy(DESIGN, 4, rng=SEED, jobs=0)

    def test_jobs_clamped_to_chips(self):
        with make_parallel_study(DESIGN, 3, rng=SEED, jobs=8) as par:
            assert par.jobs == 3
            assert par.responses().shape == (3, DESIGN.n_bits)

    def test_geometry(self):
        with make_parallel_study(DESIGN, 5, rng=SEED, jobs=2) as par:
            assert par.n_chips == 5
            assert par.n_bits == DESIGN.n_bits

    def test_close_idempotent_and_restartable(self):
        par = make_parallel_study(DESIGN, 4, rng=SEED, jobs=2)
        first = par.responses()
        par.close()
        par.close()
        # the pool comes back lazily after close
        assert np.array_equal(par.responses(), first)
        par.close()

    def test_frequency_memo(self):
        with make_parallel_study(DESIGN, 4, rng=SEED, jobs=2) as par:
            a = par.frequencies(5.0)
            b = par.frequencies(5.0)
            assert a is b
            assert not a.flags.writeable


class TestTelemetryFolding:
    def test_worker_digest_folds_into_parent(self):
        """Worker counters and span summaries land in the parent tracer."""
        with telemetry.session() as tracer:
            with make_parallel_study(DESIGN, 6, rng=SEED, jobs=2) as par:
                par.responses()
        assert tracer.counters.get("parallel.shards_completed") == 2
        # worker-side fabrication counters were folded in
        assert tracer.counters.get("parallel.shard_cache_misses") == 2
        names = set()
        stack = list(tracer.roots)
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(span.children)
        assert "parallel.evaluate" in names
        assert "parallel.shard" in names
        assert "parallel.fabricate_shard" in names

    def test_merged_progress_stream(self, tmp_path):
        """One parallel.shards heartbeat stream, emitted coordinator-side."""
        events = tmp_path / "events.jsonl"
        with telemetry.emitter_session(events, min_interval_s=0.0):
            with make_parallel_study(DESIGN, 6, rng=SEED, jobs=2) as par:
                par.responses()
        import json

        lines = [json.loads(l) for l in events.read_text().splitlines()]
        shards = [e for e in lines if e.get("stage") == "parallel.shards"]
        assert shards, "no merged shard progress was emitted"
        assert shards[0]["done"] == 0
        assert shards[-1]["done"] == 6
        assert all(e["total"] == 6 for e in shards)

    def test_workers_do_not_write_parent_events(self, tmp_path):
        """Fork-inherited emitters are severed in the pool initializer.

        If a worker kept the parent's emitter, its kernel heartbeats
        (``batch.frequencies``, ``aging.sample_prefactors``) would
        interleave into the coordinator's file with shard-local totals.
        The file must contain only coordinator-side stages, and every
        line must parse (no torn interleaved writes).
        """
        import json

        events = tmp_path / "events.jsonl"
        with telemetry.emitter_session(events, min_interval_s=0.0):
            with make_parallel_study(DESIGN, 6, rng=SEED, jobs=2) as par:
                par.responses()
        lines = [json.loads(l) for l in events.read_text().splitlines()]
        worker_stages = {"batch.frequencies", "aging.sample_prefactors"}
        assert not [e for e in lines if e.get("stage") in worker_stages]
