"""Tests for the chip-sharded parallel engine and result cache."""
