"""shard_bounds and ShardSpec: the deterministic work decomposition."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import aro_design
from repro.aging.schedule import MissionProfile
from repro.parallel import ShardSpec, shard_bounds


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loaded(self):
        assert shard_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_single_shard(self):
        assert shard_bounds(5, 1) == [(0, 5)]

    def test_more_shards_than_items_clamps(self):
        """No empty shards: 3 chips over 8 workers is 3 shards of 1."""
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 2)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(4, 0)

    @given(n=st.integers(1, 500), shards=st.integers(1, 64))
    def test_partition_properties(self, n, shards):
        """Any (n, shards): contiguous, ordered, balanced, exhaustive."""
        bounds = shard_bounds(n, shards)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        # contiguity and order
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in bounds]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n
        assert len(bounds) == min(shards, n)


class TestShardSpec:
    def _spec(self, **overrides):
        kwargs = dict(
            design=aro_design(n_ros=8, n_stages=3),
            mission=MissionProfile(),
            idle_policy=None,
            chip_start=4,
            fab_keys=(11, 22, 33),
            aging_keys=(44, 55, 66),
        )
        kwargs.update(overrides)
        return ShardSpec(**kwargs)

    def test_geometry(self):
        spec = self._spec()
        assert spec.n_chips == 3
        assert list(spec.chip_ids) == [4, 5, 6]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one chip"):
            self._spec(fab_keys=(), aging_keys=())
        with pytest.raises(ValueError, match="keys"):
            self._spec(aging_keys=(1, 2))
        with pytest.raises(ValueError, match="chip_start"):
            self._spec(chip_start=-1)

    def test_pickle_round_trip_is_small(self):
        """The task payload the pool ships must stay in the kilobytes."""
        spec = self._spec(design=aro_design(n_ros=256, n_stages=5))
        blob = pickle.dumps(spec)
        assert len(blob) < 32_000
        clone = pickle.loads(blob)
        assert clone.fab_keys == spec.fab_keys
        assert clone.chip_start == spec.chip_start
