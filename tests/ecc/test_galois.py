"""GF(2^m) arithmetic and GF(2)[x] polynomial helpers."""

import numpy as np
import pytest

from repro.ecc import (
    GF2m,
    PRIMITIVE_POLYS,
    poly_degree,
    poly_lcm_gf2,
    poly_mod_gf2,
    poly_mul_gf2,
    poly_trim,
)


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


@pytest.fixture(scope="module")
def gf256():
    return GF2m(8)


class TestConstruction:
    def test_table_sizes(self, gf16):
        assert gf16.order == 15
        assert gf16.size == 16
        assert len(gf16.log) == 16

    def test_exp_log_inverse(self, gf256):
        for x in range(1, 256):
            assert gf256.exp[gf256.log[x]] == x

    def test_non_primitive_poly_rejected(self):
        # x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible
        with pytest.raises(ValueError, match="primitive"):
            GF2m(4, primitive_poly=0b10101)

    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(4, primitive_poly=0b1011)

    def test_unsupported_size(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(15)

    def test_equality_and_hash(self):
        assert GF2m(4) == GF2m(4)
        assert GF2m(4) != GF2m(5)
        assert hash(GF2m(4)) == hash(GF2m(4))

    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYS))
    def test_all_default_polys_primitive(self, m):
        GF2m(m)  # constructor verifies primitivity


class TestArithmetic:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_mul_zero(self, gf16):
        assert gf16.mul(0, 7) == 0
        assert gf16.mul(7, 0) == 0

    def test_mul_identity(self, gf16):
        for x in range(16):
            assert gf16.mul(1, x) == x

    def test_inverse(self, gf256):
        for x in range(1, 256):
            assert gf256.mul(x, gf256.inv(x)) == 1

    def test_zero_inverse_raises(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_division(self, gf16):
        for a in range(16):
            for b in range(1, 16):
                assert gf16.mul(gf16.div(a, b), b) == a

    def test_division_by_zero(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.div(3, 0)

    def test_pow(self, gf16):
        assert gf16.pow(2, 0) == 1
        assert gf16.pow(2, gf16.order) == 1  # Fermat
        assert gf16.pow(0, 3) == 0
        assert gf16.pow(0, 0) == 1
        with pytest.raises(ZeroDivisionError):
            gf16.pow(0, -1)

    def test_negative_pow(self, gf16):
        for x in range(1, 16):
            assert gf16.mul(gf16.pow(x, -1), x) == 1

    def test_out_of_range_rejected(self, gf16):
        with pytest.raises(ValueError):
            gf16.mul(16, 1)

    def test_alpha_pow_wraps(self, gf16):
        assert gf16.alpha_pow(0) == 1
        assert gf16.alpha_pow(15) == 1
        assert gf16.alpha_pow(-1) == gf16.alpha_pow(14)


class TestStructures:
    def test_cyclotomic_coset_closed_under_doubling(self, gf16):
        coset = gf16.cyclotomic_coset(1)
        assert coset == [1, 2, 4, 8]
        for c in coset:
            assert (2 * c) % 15 in coset

    def test_coset_of_zero(self, gf16):
        assert gf16.cyclotomic_coset(0) == [0]

    def test_minimal_polynomial_of_alpha(self, gf16):
        """alpha's minimal polynomial is the field's primitive polynomial."""
        mp = gf16.minimal_polynomial(1)
        as_int = int(sum(int(c) << i for i, c in enumerate(mp)))
        assert as_int == gf16.primitive_poly

    def test_minimal_polynomial_has_root(self, gf256):
        mp = gf256.minimal_polynomial(5)
        root = gf256.alpha_pow(5)
        acc = 0
        for i, c in enumerate(mp):
            if c:
                acc ^= gf256.pow(root, i)
        assert acc == 0


class TestPolyGf2:
    def test_trim(self):
        assert poly_trim([1, 0, 1, 0, 0]).tolist() == [1, 0, 1]
        assert poly_trim([0, 0]).tolist() == [0]

    def test_degree(self):
        assert poly_degree([1, 0, 1]) == 2
        assert poly_degree([0]) == -1

    def test_mul(self):
        # (1 + x)(1 + x) = 1 + x^2 over GF(2)
        assert poly_mul_gf2([1, 1], [1, 1]).tolist() == [1, 0, 1]

    def test_mod(self):
        # x^2 mod (x + 1) = 1  (x = 1 is a root of x+1)
        rem = poly_mod_gf2([0, 0, 1], [1, 1])
        assert rem.tolist() == [1]

    def test_mod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod_gf2([1, 1], [0])

    def test_exact_division_leaves_zero(self):
        a = poly_mul_gf2([1, 1, 0, 1], [1, 0, 1])
        rem = poly_mod_gf2(a, np.array([1, 0, 1]))
        assert not rem.any()

    def test_lcm_dedups(self):
        p = [1, 1]
        lcm = poly_lcm_gf2([p, p, [1, 0, 1]])
        assert lcm.tolist() == poly_mul_gf2([1, 1], [1, 0, 1]).tolist()

    def test_lcm_empty_rejected(self):
        with pytest.raises(ValueError):
            poly_lcm_gf2([])
