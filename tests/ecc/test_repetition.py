"""Repetition code: majority decoding and residual-error model."""

import numpy as np
import pytest

from repro.ecc import RepetitionCode


class TestConstruction:
    def test_even_factor_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(-3)

    def test_geometry(self):
        code = RepetitionCode(5)
        assert (code.n, code.k, code.t) == (5, 1, 2)

    def test_trivial_code(self):
        code = RepetitionCode(1)
        assert code.t == 0


class TestEncodeDecode:
    def test_roundtrip(self):
        code = RepetitionCode(3)
        msg = np.array([1, 0, 1, 1], dtype=np.uint8)
        cw = code.encode(msg)
        assert cw.tolist() == [1, 1, 1, 0, 0, 0, 1, 1, 1, 1, 1, 1]
        assert np.array_equal(code.decode(cw), msg)

    def test_corrects_minority_flips(self):
        code = RepetitionCode(5)
        cw = code.encode(np.array([1, 0]))
        cw[[0, 3]] ^= 1  # two flips in the first group
        cw[7] ^= 1  # one flip in the second
        assert code.decode(cw).tolist() == [1, 0]

    def test_fails_on_majority_flips(self):
        code = RepetitionCode(3)
        cw = code.encode(np.array([1]))
        cw[[0, 1]] ^= 1
        assert code.decode(cw).tolist() == [0]

    def test_length_must_divide(self):
        with pytest.raises(ValueError, match="multiple"):
            RepetitionCode(3).decode(np.zeros(4, dtype=np.uint8))

    def test_binary_enforced(self):
        with pytest.raises(ValueError):
            RepetitionCode(3).encode(np.array([0, 2]))
        with pytest.raises(ValueError):
            RepetitionCode(3).decode(np.array([0, 1, 2]))


class TestErrorModel:
    def test_r1_identity(self):
        assert RepetitionCode(1).decoded_error_probability(0.3) == 0.3

    def test_reduces_error_below_half(self):
        assert RepetitionCode(7).decoded_error_probability(0.2) < 0.2

    def test_amplifies_error_above_half(self):
        assert RepetitionCode(7).decoded_error_probability(0.7) > 0.7

    def test_half_is_fixed_point(self):
        assert RepetitionCode(9).decoded_error_probability(0.5) == pytest.approx(0.5)

    def test_monotone_in_r_below_half(self):
        errs = [
            RepetitionCode(r).decoded_error_probability(0.25) for r in (3, 7, 15, 31)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_matches_monte_carlo(self):
        code = RepetitionCode(5)
        p = 0.3
        rng = np.random.default_rng(0)
        msg = np.zeros(20_000, dtype=np.uint8)
        cw = code.encode(msg)
        noisy = cw ^ (rng.random(cw.size) < p).astype(np.uint8)
        empirical = code.decode(noisy).mean()
        assert empirical == pytest.approx(
            code.decoded_error_probability(p), rel=0.05
        )

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            RepetitionCode(3).decoded_error_probability(1.5)
