"""The (23, 12) Golay code."""

import numpy as np
import pytest

from repro.ecc import BchDecodingError, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.ecc.golay import GOLAY_GENERATOR, GolayCode, _build_syndrome_table


@pytest.fixture(scope="module")
def code():
    return GolayCode()


class TestPerfection:
    def test_syndrome_table_fills_the_space(self):
        table = _build_syndrome_table()
        assert len(table) == 2**11

    def test_sphere_packing_identity(self):
        """1 + C(23,1) + C(23,2) + C(23,3) = 2^11 — the perfect-code
        counting identity the decoder relies on."""
        from math import comb

        assert sum(comb(23, w) for w in range(4)) == 2**11

    def test_generator_divides_x23_plus_1(self):
        from repro.ecc import poly_mod_gf2

        x23 = np.zeros(24, dtype=np.uint8)
        x23[0] = 1
        x23[23] = 1
        assert not poly_mod_gf2(x23, GOLAY_GENERATOR).any()


class TestGeometry:
    def test_parameters(self, code):
        assert (code.n, code.k, code.t) == (23, 12, 3)
        assert code.n_parity == 11
        assert code.rate == pytest.approx(12 / 23)

    def test_shortened(self, code):
        short = code.shortened(18)
        assert (short.n, short.k, short.t) == (18, 7, 3)

    def test_invalid_lengths(self, code):
        with pytest.raises(ValueError):
            GolayCode(n=11)
        with pytest.raises(ValueError):
            code.shortened(24)


class TestCodec:
    def test_roundtrip_all_weights(self, code):
        rng = np.random.default_rng(0)
        for n_errors in range(4):
            for _ in range(10):
                msg = rng.integers(0, 2, 12).astype(np.uint8)
                cw = code.encode(msg)
                pos = rng.choice(23, size=n_errors, replace=False)
                rx = cw.copy()
                rx[pos] ^= 1
                corrected, found = code.decode(rx)
                assert np.array_equal(corrected, cw)
                assert found == n_errors
                assert np.array_equal(code.extract_message(corrected), msg)

    def test_linearity(self, code):
        rng = np.random.default_rng(1)
        m1 = rng.integers(0, 2, 12).astype(np.uint8)
        m2 = rng.integers(0, 2, 12).astype(np.uint8)
        assert np.array_equal(
            code.encode(m1) ^ code.encode(m2), code.encode(m1 ^ m2)
        )

    def test_minimum_distance_is_seven(self, code):
        """Every nonzero single-message codeword has weight >= 7; probe a
        sample plus the unit messages."""
        rng = np.random.default_rng(2)
        for i in range(12):
            msg = np.zeros(12, dtype=np.uint8)
            msg[i] = 1
            assert code.encode(msg).sum() >= 7
        for _ in range(100):
            msg = rng.integers(0, 2, 12).astype(np.uint8)
            if msg.any():
                assert code.encode(msg).sum() >= 7

    def test_four_errors_miscorrect_silently(self, code):
        """Perfection means weight-4 patterns land on a *different*
        codeword — never a detected failure (documented behaviour)."""
        cw = code.encode(np.zeros(12, dtype=np.uint8))
        rng = np.random.default_rng(3)
        for _ in range(10):
            pos = rng.choice(23, size=4, replace=False)
            rx = cw.copy()
            rx[pos] ^= 1
            out, _ = code.decode(rx)
            assert code.is_codeword(out)
            assert not np.array_equal(out, cw)

    def test_shortened_roundtrip(self, code):
        short = code.shortened(18)
        rng = np.random.default_rng(4)
        msg = rng.integers(0, 2, 7).astype(np.uint8)
        cw = short.encode(msg)
        pos = rng.choice(18, size=3, replace=False)
        rx = cw.copy()
        rx[pos] ^= 1
        corrected, found = short.decode(rx)
        assert np.array_equal(short.extract_message(corrected), msg)

    def test_shortened_prefix_error_detected(self, code):
        """A pattern that maps into the chopped prefix raises."""
        short = code.shortened(14)
        rng = np.random.default_rng(5)
        detected = 0
        cw = short.encode(np.zeros(short.k, dtype=np.uint8))
        for _ in range(50):
            pos = rng.choice(14, size=5, replace=False)
            rx = cw.copy()
            rx[pos] ^= 1
            try:
                short.decode(rx)
            except BchDecodingError:
                detected += 1
        assert detected > 0

    def test_validation(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(11, dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.zeros(22, dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.full(23, 2))


class TestInteroperability:
    def test_as_outer_code_in_key_codec(self, code):
        codec = KeyCodec(
            code=ConcatenatedCode(outer=code, inner=RepetitionCode(3)),
            key_bits=24,
        )
        rng = np.random.default_rng(6)
        msg = rng.integers(0, 2, codec.message_bits).astype(np.uint8)
        enc = codec.encode(msg)
        noisy = enc ^ (rng.random(enc.size) < 0.04).astype(np.uint8)
        assert np.array_equal(codec.decode(noisy), msg)

    def test_in_fuzzy_extractor(self, code):
        from repro.keygen import FuzzyExtractor

        codec = KeyCodec(
            code=ConcatenatedCode(outer=code, inner=RepetitionCode(3)),
            key_bits=24,
        )
        fx = FuzzyExtractor(codec)
        rng = np.random.default_rng(7)
        resp = rng.integers(0, 2, fx.response_bits).astype(np.uint8)
        helper, key = fx.enroll(resp, rng=8)
        noise = (rng.random(resp.size) < 0.03).astype(np.uint8)
        assert fx.reproduce(resp ^ noise, helper) == key

    def test_instances_share_the_table(self):
        a, b = GolayCode(), GolayCode()
        assert a._table is b._table
