"""ECC area model: scaling behaviour (absolute values are library lore)."""

import pytest

from repro.ecc import (
    BchCode,
    ConcatenatedCode,
    KeyCodec,
    RepetitionCode,
    bch_decoder_area,
    gf_multiplier_area,
    keygen_area,
    repetition_decoder_area,
)
from repro.transistor import ptm90


@pytest.fixture(scope="module")
def tech():
    return ptm90()


class TestBchDecoderArea:
    def test_grows_with_t(self, tech):
        small = bch_decoder_area(BchCode.design(8, 4), tech).total
        large = bch_decoder_area(BchCode.design(8, 16), tech).total
        assert large > 2 * small

    def test_grows_with_field_size(self, tech):
        small = bch_decoder_area(BchCode.design(6, 3), tech).total
        large = bch_decoder_area(BchCode.design(10, 3), tech).total
        assert large > small

    def test_breakdown_sums(self, tech):
        bd = bch_decoder_area(BchCode.design(7, 5), tech)
        assert bd.total == pytest.approx(
            bd.syndrome + bd.berlekamp_massey + bd.chien + bd.encoder
        )

    def test_plausible_magnitude(self, tech):
        """A (255,131,t=18) decoder lands in the 10^4 um^2 range at 90 nm —
        thousands of gate equivalents, not millions."""
        total = bch_decoder_area(BchCode.design(8, 18), tech).total
        assert 5e3 < total < 1e5


class TestRepetitionArea:
    def test_trivial_code_free(self, tech):
        assert repetition_decoder_area(RepetitionCode(1), tech) == 0.0

    def test_grows_slowly(self, tech):
        a3 = repetition_decoder_area(RepetitionCode(3), tech)
        a33 = repetition_decoder_area(RepetitionCode(33), tech)
        assert 0 < a3 < a33 < 10 * a3  # log-ish growth


class TestGfMultiplier:
    def test_quadratic_in_m(self, tech):
        a4 = gf_multiplier_area(4, tech.area)
        a8 = gf_multiplier_area(8, tech.area)
        assert a8 == pytest.approx(4 * a4)


class TestKeygenArea:
    def test_includes_repetition_and_helper(self, tech):
        codec = KeyCodec(
            code=ConcatenatedCode(BchCode.design(7, 5), RepetitionCode(5)),
            key_bits=128,
        )
        bd = keygen_area(codec, tech)
        assert bd.repetition > 0
        assert bd.helper_xor > 0
        assert bd.total > bch_decoder_area(codec.code.outer, tech).total

    def test_time_sharing_ignores_block_count(self, tech):
        code = ConcatenatedCode(BchCode.design(7, 5), RepetitionCode(3))
        one = keygen_area(KeyCodec(code=code, key_bits=64), tech).total
        many = keygen_area(KeyCodec(code=code, key_bits=256), tech).total
        assert one == pytest.approx(many)
