"""BCH codes: construction, encoding, decoding, shortening."""

import numpy as np
import pytest

from repro.ecc import BchCode, BchDecodingError, standard_codes


@pytest.fixture(scope="module")
def bch_31_3():
    return BchCode.design(5, 3)


class TestConstruction:
    @pytest.mark.parametrize(
        "m,t,n,k",
        [(4, 1, 15, 11), (4, 2, 15, 7), (5, 3, 31, 16), (7, 9, 127, 71)],
    )
    def test_standard_parameters(self, m, t, n, k):
        """Dimensions must match the published BCH tables."""
        code = BchCode.design(m, t)
        assert (code.n, code.k) == (n, k)

    def test_generator_divides_x_n_minus_1(self, bch_31_3):
        from repro.ecc import poly_mod_gf2

        x_n_1 = np.zeros(32, dtype=np.uint8)
        x_n_1[0] = 1
        x_n_1[31] = 1
        assert not poly_mod_gf2(x_n_1, bch_31_3.generator).any()

    def test_excessive_t_rejected(self):
        with pytest.raises(ValueError):
            BchCode.design(4, 8)

    def test_nonpositive_t_rejected(self):
        with pytest.raises(ValueError):
            BchCode.design(5, 0)

    def test_rate_and_parity(self, bch_31_3):
        assert bch_31_3.n_parity == 15
        assert bch_31_3.rate == pytest.approx(16 / 31)


class TestEncoding:
    def test_systematic_layout(self, bch_31_3):
        msg = np.ones(16, dtype=np.uint8)
        cw = bch_31_3.encode(msg)
        assert cw.shape == (31,)
        assert np.array_equal(cw[15:], msg)
        assert np.array_equal(bch_31_3.extract_message(cw), msg)

    def test_codeword_is_codeword(self, bch_31_3):
        rng = np.random.default_rng(0)
        for _ in range(10):
            msg = rng.integers(0, 2, 16).astype(np.uint8)
            assert bch_31_3.is_codeword(bch_31_3.encode(msg))

    def test_linearity(self, bch_31_3):
        rng = np.random.default_rng(1)
        m1 = rng.integers(0, 2, 16).astype(np.uint8)
        m2 = rng.integers(0, 2, 16).astype(np.uint8)
        assert np.array_equal(
            bch_31_3.encode(m1) ^ bch_31_3.encode(m2),
            bch_31_3.encode(m1 ^ m2),
        )

    def test_wrong_length_rejected(self, bch_31_3):
        with pytest.raises(ValueError):
            bch_31_3.encode(np.zeros(15, dtype=np.uint8))

    def test_non_binary_rejected(self, bch_31_3):
        with pytest.raises(ValueError):
            bch_31_3.encode(np.full(16, 2))


class TestDecoding:
    def test_error_free(self, bch_31_3):
        msg = np.zeros(16, dtype=np.uint8)
        cw = bch_31_3.encode(msg)
        corrected, n = bch_31_3.decode(cw)
        assert n == 0
        assert np.array_equal(corrected, cw)

    @pytest.mark.parametrize("n_errors", [1, 2, 3])
    def test_corrects_up_to_t(self, bch_31_3, n_errors):
        rng = np.random.default_rng(n_errors)
        for _ in range(15):
            msg = rng.integers(0, 2, 16).astype(np.uint8)
            cw = bch_31_3.encode(msg)
            pos = rng.choice(31, size=n_errors, replace=False)
            rx = cw.copy()
            rx[pos] ^= 1
            corrected, found = bch_31_3.decode(rx)
            assert found == n_errors
            assert np.array_equal(corrected, cw)

    def test_beyond_capacity_detected_or_wrong(self, bch_31_3):
        """> t errors either raise or land on a *different* codeword —
        never silently return a non-codeword."""
        rng = np.random.default_rng(9)
        cw = bch_31_3.encode(np.zeros(16, dtype=np.uint8))
        detected = 0
        for _ in range(20):
            pos = rng.choice(31, size=6, replace=False)
            rx = cw.copy()
            rx[pos] ^= 1
            try:
                out, _ = bch_31_3.decode(rx)
                assert bch_31_3.is_codeword(out)
            except BchDecodingError:
                detected += 1
        assert detected > 0

    def test_wrong_length_rejected(self, bch_31_3):
        with pytest.raises(ValueError):
            bch_31_3.decode(np.zeros(30, dtype=np.uint8))


class TestShortening:
    def test_dimensions(self):
        full = BchCode.design(7, 5)
        code = full.shortened(80)
        assert code.n == 80
        # shortening drops message bits only: parity width is untouched
        assert code.n_parity == full.n_parity
        assert code.k == 80 - full.n_parity

    def test_roundtrip_with_errors(self):
        code = BchCode.design(7, 5).shortened(80)
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, code.k).astype(np.uint8)
        cw = code.encode(msg)
        pos = rng.choice(code.n, size=5, replace=False)
        rx = cw.copy()
        rx[pos] ^= 1
        corrected, found = code.decode(rx)
        assert found == 5
        assert np.array_equal(code.extract_message(corrected), msg)

    def test_cannot_lengthen(self, bch_31_3):
        with pytest.raises(ValueError):
            bch_31_3.shortened(40)

    def test_cannot_consume_all_message_bits(self, bch_31_3):
        with pytest.raises(ValueError):
            bch_31_3.shortened(15)  # would leave k = 0


class TestStandardCodes:
    def test_palette_nonempty_and_valid(self):
        palette = standard_codes(max_m=7, max_t=6)
        assert len(palette) > 10
        for code in palette:
            assert code.k >= 8
            assert code.n == 2**code.field.m - 1

    def test_palette_sorted_families(self):
        palette = standard_codes(max_m=6, max_t=4)
        lengths = {code.n for code in palette}
        assert lengths == {31, 63}
