"""Concatenated codes and key codecs."""

import numpy as np
import pytest

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode


@pytest.fixture(scope="module")
def code():
    return ConcatenatedCode(outer=BchCode.design(5, 3), inner=RepetitionCode(3))


@pytest.fixture(scope="module")
def codec(code):
    return KeyCodec(code=code, key_bits=64)


class TestConcatenated:
    def test_geometry(self, code):
        assert code.n == 93  # 31 * 3
        assert code.k == 16

    def test_roundtrip_clean(self, code):
        rng = np.random.default_rng(0)
        msg = rng.integers(0, 2, 16).astype(np.uint8)
        assert np.array_equal(code.decode_message(code.encode(msg)), msg)

    def test_corrects_mixed_errors(self, code):
        """Scattered single flips die in the majority stage; a few group
        majorities may flip and the BCH stage cleans those up."""
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 2, 16).astype(np.uint8)
        cw = code.encode(msg)
        noisy = cw.copy()
        noisy[0] ^= 1          # lone flip, majority fixes
        noisy[[3, 4]] ^= 1     # group 1 majority flips -> BCH fixes
        noisy[[30, 31]] ^= 1   # another outer error
        assert np.array_equal(code.decode_message(noisy), msg)

    def test_wrong_length_rejected(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(92, dtype=np.uint8))

    def test_block_failure_probability_monotone(self, code):
        probs = [code.block_failure_probability(p) for p in (0.01, 0.05, 0.1, 0.2)]
        assert probs == sorted(probs)
        assert 0 <= probs[0] < probs[-1] <= 1

    def test_trivial_inner_matches_bch_alone(self):
        outer = BchCode.design(5, 3)
        plain = ConcatenatedCode(outer=outer, inner=RepetitionCode(1))
        from scipy import stats

        p = 0.03
        assert plain.block_failure_probability(p) == pytest.approx(
            float(stats.binom.sf(outer.t, outer.n, p))
        )


class TestKeyCodec:
    def test_block_count(self, codec):
        assert codec.n_blocks == 4  # ceil(64 / 16)
        assert codec.message_bits == 64
        assert codec.raw_bits == 4 * 93

    def test_uneven_key_rounds_up(self, code):
        codec = KeyCodec(code=code, key_bits=50)
        assert codec.n_blocks == 4
        assert codec.message_bits == 64

    def test_roundtrip(self, codec):
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, codec.message_bits).astype(np.uint8)
        encoded = codec.encode(msg)
        assert encoded.shape == (codec.raw_bits,)
        assert np.array_equal(codec.decode(encoded), msg)

    def test_roundtrip_with_noise(self, codec):
        rng = np.random.default_rng(3)
        msg = rng.integers(0, 2, codec.message_bits).astype(np.uint8)
        encoded = codec.encode(msg)
        noisy = encoded ^ (rng.random(encoded.size) < 0.04).astype(np.uint8)
        assert np.array_equal(codec.decode(noisy), msg)

    def test_key_failure_combines_blocks(self, codec):
        p_block = codec.code.block_failure_probability(0.1)
        expected = 1 - (1 - p_block) ** codec.n_blocks
        assert codec.key_failure_probability(0.1) == pytest.approx(expected)

    def test_shape_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            codec.decode(np.zeros(10, dtype=np.uint8))

    def test_key_bits_positive(self, code):
        with pytest.raises(ValueError):
            KeyCodec(code=code, key_bits=0)
