"""Public API surface: everything advertised is importable and coherent."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.transistor",
    "repro.variation",
    "repro.circuit",
    "repro.aging",
    "repro.environment",
    "repro.core",
    "repro.metrics",
    "repro.ecc",
    "repro.keygen",
    "repro.protocol",
    "repro.analysis",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_design_factories_exported(self):
        design = repro.aro_design(n_ros=16)
        assert design.n_bits == 8
        assert repro.conventional_design().name == "ro-puf"

    def test_quickstart_docstring_flow_works(self):
        """The flow shown in the package docstring must actually run."""
        from repro.metrics import reliability, uniqueness

        study = repro.make_study(repro.aro_design(n_ros=16), n_chips=3, rng=42)
        fresh = study.responses()
        aged = study.responses(t_years=10.0)
        assert 0.0 <= uniqueness(fresh).mean <= 1.0
        assert 0.0 <= reliability(fresh, aged).mean_flip_fraction <= 1.0

    def test_cli_module_importable(self):
        from repro import cli

        assert callable(cli.main)
