"""PopulationStore: chunked fabrication, lazy columns, content keys.

The store's contract is that a chip's bytes depend only on its spawn
key — never on which block materialised it, the block size, or which
columns were asked for first.  These tests pin that contract at small
scale; the RSS/throughput behaviour lives in
``benchmarks/bench_population.py``.
"""

import numpy as np
import pytest

from repro import aro_design, conventional_design
from repro.store import (
    AGING_COLUMNS,
    COLUMNS,
    FAB_COLUMNS,
    PopulationStore,
    flush_rows,
    release_rows,
    remove_store,
)

DESIGN = aro_design(n_ros=16, n_stages=3)
N_CHIPS = 13  # deliberately not divisible by any tested block size
SEED = 987


def _full_columns(root, block_size, columns=COLUMNS):
    """Create a store, materialise every requested column, return copies."""
    store = PopulationStore.create(
        root, DESIGN, N_CHIPS, rng=SEED, block_size=block_size
    )
    try:
        store.ensure_rows(0, N_CHIPS, columns)
        return {name: np.array(store.column(name)) for name in columns}
    finally:
        store.close()


class TestChunkDeterminism:
    @pytest.mark.parametrize("block_size", [1, 7, 64, N_CHIPS])
    def test_block_size_invisible_in_bytes(self, tmp_path, block_size):
        """Every column is byte-identical regardless of chunking."""
        ref = _full_columns(tmp_path / "ref", N_CHIPS)
        got = _full_columns(tmp_path / "case", block_size)
        for name in COLUMNS:
            assert np.array_equal(ref[name], got[name]), name

    def test_column_order_invisible_in_bytes(self, tmp_path):
        """Fabricating aging before fab columns replays the same draws."""
        ref = _full_columns(tmp_path / "ref", 5)
        store = PopulationStore.create(
            tmp_path / "reorder", DESIGN, N_CHIPS, rng=SEED, block_size=5
        )
        try:
            store.ensure_rows(0, N_CHIPS, AGING_COLUMNS)
            store.ensure_rows(0, N_CHIPS, FAB_COLUMNS)
            for name in COLUMNS:
                assert np.array_equal(ref[name], np.array(store.column(name)))
        finally:
            store.close()

    def test_partial_then_full_materialisation(self, tmp_path):
        """Rows fabricated in a first narrow pass keep their bytes."""
        ref = _full_columns(tmp_path / "ref", 4)
        store = PopulationStore.create(
            tmp_path / "partial", DESIGN, N_CHIPS, rng=SEED, block_size=4
        )
        try:
            store.ensure_rows(5, 9, ["vth"])
            early = np.array(store.column("vth")[4:12])
            store.ensure_rows(0, N_CHIPS, COLUMNS)
            assert np.array_equal(early, np.array(store.column("vth")[4:12]))
            for name in COLUMNS:
                assert np.array_equal(ref[name], np.array(store.column(name)))
        finally:
            store.close()

    def test_dir_columns_fold_the_coeff_columns(self, tmp_path):
        """bti_dir/hci_dir are the raw coefficients with the static
        stress powers baked in — same magnitude ordering, never NaN."""
        cols = _full_columns(tmp_path / "s", 5)
        for raw, folded in (("bti_coeff", "bti_dir"), ("hci_coeff", "hci_dir")):
            assert np.isfinite(cols[folded]).all()
            # the fold is a positive per-(stage, edge) factor, so zero
            # coefficients stay zero and signs are preserved
            assert np.array_equal(cols[raw] == 0.0, cols[folded] == 0.0)
            assert np.array_equal(np.sign(cols[raw]), np.sign(cols[folded]))


class TestLazyColumns:
    def test_unread_column_stays_unmaterialised(self, tmp_path):
        store = PopulationStore.create(
            tmp_path / "lazy", DESIGN, N_CHIPS, rng=SEED, block_size=4
        )
        try:
            assert store.materialised_blocks("vth") == 0
            store.ensure_rows(0, 6, ["vth"])
            assert store.materialised_blocks("vth") == 2
            assert store.materialised_blocks("tc_scale") == 0
            assert store.materialised_blocks("bti_dir") == 0
        finally:
            store.close()

    def test_ensure_rows_is_idempotent(self, tmp_path):
        store = PopulationStore.create(
            tmp_path / "idem", DESIGN, N_CHIPS, rng=SEED, block_size=4
        )
        try:
            store.ensure_rows(0, N_CHIPS, ["vth"])
            before = np.array(store.column("vth"))
            store.ensure_rows(0, N_CHIPS, ["vth"])
            assert np.array_equal(before, np.array(store.column("vth")))
            assert store.materialised_blocks("vth") == 4
        finally:
            store.close()


class TestContentKeys:
    def test_create_adopts_matching_store(self, tmp_path):
        root = tmp_path / "pop"
        first = PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED)
        first.ensure_rows(0, N_CHIPS, ["vth"])
        vth = np.array(first.column("vth"))
        first.close()
        again = PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED)
        try:
            # adopted, not refabricated: the flags survived
            assert again.materialised_blocks("vth") > 0
            assert np.array_equal(vth, np.array(again.column("vth")))
        finally:
            again.close()

    def test_create_refuses_mismatching_store(self, tmp_path):
        root = tmp_path / "pop"
        PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED).close()
        with pytest.raises(ValueError, match="content key mismatch"):
            PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED + 1)

    def test_attach_round_trips(self, tmp_path):
        root = tmp_path / "pop"
        created = PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED)
        key = created.content_key
        created.close()
        attached = PopulationStore.attach(root, DESIGN)
        try:
            assert attached.content_key == key
            assert attached.n_chips == N_CHIPS
        finally:
            attached.close()

    def test_attach_wrong_design_fails(self, tmp_path):
        root = tmp_path / "pop"
        PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED).close()
        other = conventional_design(n_ros=16, n_stages=3)
        with pytest.raises(ValueError, match="content key mismatch"):
            PopulationStore.attach(root, other)

    def test_attach_missing_store_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PopulationStore.attach(tmp_path / "nowhere", DESIGN)

    def test_remove_store(self, tmp_path):
        root = tmp_path / "pop"
        PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED).close()
        remove_store(root)
        assert not root.exists()


class TestPageOps:
    def test_release_never_loses_committed_bytes(self, tmp_path):
        """madvise(DONTNEED) on a MAP_SHARED file mapping is an RSS hint,
        not a discard: flushed rows read back bit-identically."""
        path = tmp_path / "seg.npy"
        mm = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.float64, shape=(64, 1024)
        )
        rng = np.random.default_rng(SEED)
        data = rng.normal(size=(64, 1024))
        mm[:] = data
        flush_rows(mm, 0, 64)
        release_rows(mm, 0, 64)
        assert np.array_equal(np.array(mm), data)
        del mm
        assert np.array_equal(np.load(path), data)
