"""StoreStudy: bit-identity with the in-RAM engine at any chunking.

The acceptance criterion of the out-of-core PR: responses, frequencies,
mechanism decompositions and margin histograms from the mmap path must
be byte-identical to ``BatchStudy`` for every block size and worker
count — including block sizes that do not divide the chip count.
"""

import numpy as np
import pytest

from contextlib import closing

from repro import aro_design
from repro.analysis import ExperimentConfig, aging_bitflips
from repro.core.population import make_batch_study
from repro.environment.conditions import OperatingConditions, celsius
from repro.metrics.margins import histogram_edges
from repro.parallel import make_parallel_study
from repro.store import StoreStudy, make_store_study

DESIGN = aro_design(n_ros=16, n_stages=3)
N_CHIPS = 13
SEED = 987


@pytest.fixture(scope="module")
def serial():
    return make_batch_study(DESIGN, N_CHIPS, rng=SEED)


class TestBitIdentity:
    @pytest.mark.parametrize("block_size", [1, 7, 64, N_CHIPS])
    @pytest.mark.parametrize("t", [0.0, 10.0])
    def test_responses_any_block_size(self, serial, block_size, t):
        with make_store_study(
            DESIGN, N_CHIPS, rng=SEED, block_size=block_size
        ) as study:
            assert np.array_equal(
                serial.responses(t_years=t), study.responses(t_years=t)
            )
            assert np.array_equal(
                serial.frequencies(t_years=t), study.frequencies(t_years=t)
            )

    def test_corner_conditions(self, serial):
        cond = OperatingConditions(temperature_k=celsius(85.0), vdd=1.1)
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=5) as study:
            assert np.array_equal(
                serial.frequencies(5.0, cond), study.frequencies(5.0, cond)
            )

    @pytest.mark.parametrize("mechanism", ["bti", "hci"])
    def test_mechanism_decomposition(self, serial, mechanism):
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=5) as study:
            assert np.array_equal(
                serial.mechanism_frequencies(10.0, mechanism),
                study.mechanism_frequencies(10.0, mechanism),
            )

    def test_margin_histogram(self, serial):
        edges = histogram_edges()
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=5) as study:
            assert np.array_equal(
                serial.margin_histogram(edges, t_years=10.0),
                study.margin_histogram(edges, t_years=10.0),
            )

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_mmap_any_worker_count(self, serial, jobs):
        with closing(
            make_parallel_study(
                DESIGN, N_CHIPS, rng=SEED, jobs=jobs, store="mmap", block_size=5
            )
        ) as par:
            for t in (0.0, 10.0):
                assert np.array_equal(
                    serial.responses(t_years=t), par.responses(t_years=t)
                )

    def test_aging_flips_identical(self, serial):
        """The quantity the paper gates on: fresh-vs-aged bit flips."""
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=7) as study:
            flips_serial = serial.responses() != serial.responses(t_years=10.0)
            flips_store = study.responses() != study.responses(t_years=10.0)
            assert np.array_equal(flips_serial, flips_store)


class TestLifecycle:
    def test_temp_root_removed_on_close(self):
        study = make_store_study(DESIGN, N_CHIPS, rng=SEED)
        root = study.store.root
        assert root.exists()
        study.close()
        assert not root.exists()

    def test_persistent_store_dir_survives_and_readopts(self, tmp_path):
        root = tmp_path / "pop"
        with make_store_study(
            DESIGN, N_CHIPS, rng=SEED, store_dir=root
        ) as study:
            ref = study.responses(t_years=10.0)
        assert root.exists()
        with make_store_study(
            DESIGN, N_CHIPS, rng=SEED, store_dir=root
        ) as again:
            # adopted: fabricated columns are still flagged, same bytes out
            assert again.store.materialised_blocks("vth") > 0
            assert np.array_equal(ref, again.responses(t_years=10.0))

    def test_geometry_mismatch_rejected(self, tmp_path):
        from repro import MissionProfile
        from repro.store import PopulationStore

        root = tmp_path / "pop"
        store = PopulationStore.create(root, DESIGN, N_CHIPS, rng=SEED)
        other = aro_design(n_ros=32, n_stages=3)
        with pytest.raises(ValueError, match="geometry"):
            StoreStudy(other, store, mission=MissionProfile())
        store.close()

    def test_bad_row_window_rejected(self, tmp_path):
        from repro import MissionProfile
        from repro.store import PopulationStore

        store = PopulationStore.create(
            tmp_path / "pop", DESIGN, N_CHIPS, rng=SEED
        )
        with pytest.raises(ValueError, match="row window"):
            StoreStudy(
                DESIGN, store, mission=MissionProfile(), row_start=5, row_stop=3
            )
        store.close()

    def test_drop_cached_corners_forces_recompute(self):
        from repro import telemetry

        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=7) as study:
            study.responses(t_years=10.0)
            with telemetry.session() as counters:
                study.responses(t_years=10.0)  # memo hit, no kernel work
                study.drop_cached_corners()
                study.responses(t_years=10.0)  # recomputed
            assert counters.counters.get("store.kernel_blocks", 0) > 0
            assert counters.counters.get("store.corner_memo_hits", 0) >= 1


class TestExperimentRouting:
    def test_e2_scalars_identical_ram_vs_mmap(self):
        """--store mmap must not change a single published number."""
        years = (1.0, 10.0)
        ram = ExperimentConfig(n_chips=6, n_ros=32, seed=7)
        mmap_cfg = ExperimentConfig(n_chips=6, n_ros=32, seed=7, store="mmap")
        serial = aging_bitflips(ram, years=years)
        streamed = aging_bitflips(mmap_cfg, years=years)
        for name, series in serial.series.items():
            assert series.y == streamed.series[name].y

    def test_store_flag_validated(self):
        with pytest.raises(ValueError, match="store"):
            ExperimentConfig(n_chips=4, n_ros=16, store="tape")
        with pytest.raises(ValueError, match="block_size"):
            ExperimentConfig(n_chips=4, n_ros=16, store="mmap", block_size=0)
