"""The streaming regime: spill-to-disk corners, page release, identity.

At test scale every window fits the resident budget, so the streaming
machinery (per-block madvise, corner spill through the result cache)
would never fire.  These tests shrink ``RESIDENT_BUDGET_BYTES`` to zero
to force the full out-of-core code path and pin two properties: the
numbers do not change, and the corners really do go through the spill
directory (with eviction deleting the bytes).
"""

import numpy as np
import pytest

from repro import aro_design
from repro.core.population import make_batch_study
from repro.store import StoreStudy, make_store_study

DESIGN = aro_design(n_ros=16, n_stages=3)
N_CHIPS = 13
SEED = 987


@pytest.fixture
def streaming_budget(monkeypatch):
    monkeypatch.setattr(StoreStudy, "RESIDENT_BUDGET_BYTES", 0)


@pytest.fixture(scope="module")
def serial():
    return make_batch_study(DESIGN, N_CHIPS, rng=SEED)


class TestStreamingRegime:
    def test_budget_splits_the_regimes(self):
        with make_store_study(DESIGN, N_CHIPS, rng=SEED) as study:
            assert not study._streaming  # tiny window: in-RAM regime

    def test_streaming_is_bit_identical(self, streaming_budget, serial):
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, block_size=5) as study:
            assert study._streaming
            for t in (0.0, 2.0, 10.0):
                assert np.array_equal(
                    serial.responses(t_years=t), study.responses(t_years=t)
                )

    def test_corners_spill_to_disk(self, streaming_budget, tmp_path):
        with make_store_study(
            DESIGN, N_CHIPS, rng=SEED, block_size=5, store_dir=tmp_path / "pop"
        ) as study:
            spill_dir = tmp_path / "pop" / "spill"
            study.responses(t_years=10.0)
            spilled = list(spill_dir.glob("*.npy"))
            assert spilled, "streaming corners must live in the spill dir"
            study.drop_cached_corners()
            assert not list(spill_dir.glob("*.npy"))

    def test_memo_depth_shrinks_when_spilling(self, streaming_budget):
        with make_store_study(DESIGN, N_CHIPS, rng=SEED) as study:
            assert study.memo_size == StoreStudy.SPILL_MEMO_SIZE

    def test_memo_depth_full_when_resident(self):
        with make_store_study(DESIGN, N_CHIPS, rng=SEED) as study:
            assert study.memo_size == StoreStudy.MEMO_SIZE

    def test_eviction_deletes_spilled_bytes(self, streaming_budget, tmp_path):
        with make_store_study(
            DESIGN, N_CHIPS, rng=SEED, store_dir=tmp_path / "pop"
        ) as study:
            spill_dir = tmp_path / "pop" / "spill"
            # one corner more than the spill memo keeps
            for t in np.linspace(0.0, 10.0, StoreStudy.SPILL_MEMO_SIZE + 1):
                study.frequencies(t_years=float(t))
            assert (
                len(list(spill_dir.glob("*.npy")))
                <= StoreStudy.SPILL_MEMO_SIZE
            )

    def test_spilled_corner_reused_across_studies(
        self, streaming_budget, tmp_path
    ):
        from repro import telemetry

        root = tmp_path / "pop"
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, store_dir=root) as one:
            ref = np.array(one.frequencies(t_years=10.0))
        with make_store_study(DESIGN, N_CHIPS, rng=SEED, store_dir=root) as two:
            with telemetry.session() as counters:
                again = two.frequencies(t_years=10.0)
            assert np.array_equal(ref, again)
            # served from the persisted spill, not recomputed
            assert counters.counters.get("store.corner_memo_hits", 0) >= 1
            assert counters.counters.get("store.kernel_blocks", 0) == 0
