"""Study factory: registry, aging integration, reproducibility."""

import numpy as np
import pytest

from repro.aging import IdlePolicy, MissionProfile
from repro.core import conventional_design, design_by_name, make_study


class TestRegistry:
    def test_lookup(self):
        assert design_by_name("ro-puf").name == "ro-puf"
        assert design_by_name("aro-puf", n_ros=64).n_ros == 64

    def test_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="aro-puf"):
            design_by_name("mystery-puf")


class TestStudy:
    def test_sizes(self, conventional_study):
        assert conventional_study.n_chips == 8
        assert len(conventional_study.agings) == 8

    def test_golden_responses(self, conventional_study):
        responses = conventional_study.responses()
        assert len(responses) == 8
        assert all(r.shape == (16,) for r in responses)

    def test_aged_responses_differ(self, conventional_study):
        fresh = conventional_study.responses()
        aged = conventional_study.responses(t_years=10.0)
        total_flips = sum(
            int(np.count_nonzero(f != a)) for f, a in zip(fresh, aged)
        )
        assert total_flips > 0

    def test_aged_instances_rebind_same_designs(self, conventional_study):
        aged = conventional_study.aged_instances(5.0)
        assert all(
            a.design is i.design
            for a, i in zip(aged, conventional_study.instances)
        )

    def test_reproducible(self, small_conventional):
        a = make_study(small_conventional, 3, rng=77)
        b = make_study(small_conventional, 3, rng=77)
        assert np.array_equal(a.responses()[0], b.responses()[0])
        assert np.array_equal(
            a.responses(t_years=10.0)[2], b.responses(t_years=10.0)[2]
        )

    def test_idle_policy_override_changes_aging(self, small_conventional):
        mission = MissionProfile()
        parked = make_study(small_conventional, 4, mission=mission, rng=5)
        free = make_study(
            small_conventional,
            4,
            mission=mission,
            idle_policy=IdlePolicy.FREE_RUNNING,
            rng=5,
        )
        # same fabrication (same seed), different aging trajectories
        assert np.array_equal(parked.instances[0].chip.vth, free.instances[0].chip.vth)
        d_parked = parked.agings[0].delta(10.0)
        d_free = free.agings[0].delta(10.0)
        assert not np.allclose(d_parked, d_free)
