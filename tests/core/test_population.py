"""Batch/loop equivalence for the population evaluation engine.

The contract of :mod:`repro.core.population`: under the same seed the
batched path produces the *same silicon* as the per-chip path — aging
deltas and response bits are bit-identical, frequencies agree to
floating-point rounding (the batched kernel folds scalar factors into the
stage-weight reduction, which regroups a few multiplications).
"""

import numpy as np
import pytest

from repro import make_batch_study, make_study
from repro.aging import IdlePolicy
from repro.aging.simulator import PopulationAging
from repro.core import aro_design, compare_pairs, conventional_design
from repro.core.population import BatchStudy, PopulationView
from repro.environment import OperatingConditions, celsius
from repro.metrics import reliability

N_CHIPS = 6
N_ROS = 32
SEED = 99

YEARS = [0.0, 5.0, 10.0]
FACTORIES = {"ro-puf": conventional_design, "aro-puf": aro_design}


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def paths(request):
    """The same (design, seed) fabricated through both evaluation paths."""
    design = FACTORIES[request.param](n_ros=N_ROS)
    study = make_study(design, N_CHIPS, rng=SEED)
    batch = make_batch_study(design, N_CHIPS, rng=SEED)
    return study, batch


class TestSameSilicon:
    def test_thresholds_bit_identical(self, paths):
        study, batch = paths
        for i, inst in enumerate(study.instances):
            assert np.array_equal(batch.view.vth[i], inst.chip.vth)
            assert np.array_equal(batch.view.tc_scale[i], inst.chip.tc_scale)
            assert batch.view.chip_ids[i] == inst.chip.chip_id

    def test_prefactors_bit_identical(self, paths):
        study, batch = paths
        for i, aging in enumerate(study.agings):
            assert np.array_equal(batch.aging.nbti_a[i], aging.nbti_a)
            assert np.array_equal(batch.aging.hci_b[i], aging.hci_b)


class TestAgingEquivalence:
    @pytest.mark.parametrize("t", [t for t in YEARS if t > 0])
    def test_deltas_bit_identical(self, paths, t):
        study, batch = paths
        delta = batch.aging.delta(t)
        for i, aging in enumerate(study.agings):
            assert np.array_equal(delta[i], aging.delta(t))

    def test_delta_grid_stacks_the_memo(self, paths):
        _, batch = paths
        grid = batch.aging.delta_grid([1.0, 3.0])
        assert grid.shape == (2, N_CHIPS, N_ROS, 5, 2)
        assert np.array_equal(grid[0], batch.aging.delta(1.0))
        assert np.array_equal(grid[1], batch.aging.delta(3.0))

    @pytest.mark.parametrize("t", [t for t in YEARS if t > 0])
    def test_aged_instances_bit_identical(self, paths, t):
        study, batch = paths
        for fast, slow in zip(batch.aged_instances(t), study.aged_instances(t)):
            assert np.array_equal(fast.chip.vth, slow.chip.vth)

    def test_idle_policy_override_matches(self):
        design = FACTORIES["ro-puf"](n_ros=N_ROS)
        study = make_study(
            design, N_CHIPS, idle_policy=IdlePolicy.FREE_RUNNING, rng=SEED
        )
        batch = make_batch_study(
            design, N_CHIPS, idle_policy=IdlePolicy.FREE_RUNNING, rng=SEED
        )
        delta = batch.aging.delta(10.0)
        for i, aging in enumerate(study.agings):
            assert np.array_equal(delta[i], aging.delta(10.0))


class TestFrequencyEquivalence:
    @pytest.mark.parametrize("t", YEARS)
    def test_frequencies_match_per_chip(self, paths, t):
        study, batch = paths
        freqs = batch.frequencies(t_years=t)
        assert freqs.shape == (N_CHIPS, N_ROS)
        insts = study.instances if t == 0 else study.aged_instances(t)
        for i, inst in enumerate(insts):
            np.testing.assert_allclose(freqs[i], inst.frequencies(), rtol=1e-11)

    @pytest.mark.parametrize(
        "cond",
        [
            OperatingConditions(temperature_k=celsius(85.0)),
            OperatingConditions(temperature_k=celsius(-20.0)),
            OperatingConditions(vdd=1.1),
            OperatingConditions(temperature_k=celsius(60.0), vdd=0.95),
        ],
    )
    def test_corner_frequencies_match_per_chip(self, paths, cond):
        study, batch = paths
        freqs = batch.frequencies(conditions=cond)
        for i, inst in enumerate(study.instances):
            np.testing.assert_allclose(
                freqs[i], inst.frequencies(cond), rtol=1e-11
            )

    def test_corner_plus_aging_matches_per_chip(self, paths):
        study, batch = paths
        cond = OperatingConditions(temperature_k=celsius(85.0))
        freqs = batch.frequencies(t_years=10.0, conditions=cond)
        for i, inst in enumerate(study.aged_instances(10.0)):
            np.testing.assert_allclose(
                freqs[i], inst.frequencies(cond), rtol=1e-11
            )


class TestResponseEquivalence:
    @pytest.mark.parametrize("t", YEARS)
    def test_responses_bit_identical(self, paths, t):
        study, batch = paths
        got = batch.responses(t_years=t)
        want = study.responses(t_years=t)
        assert got.shape == (N_CHIPS, batch.n_bits)
        assert got.dtype == np.uint8
        for i in range(N_CHIPS):
            assert np.array_equal(got[i], want[i])

    def test_corner_responses_bit_identical(self, paths):
        study, batch = paths
        cond = OperatingConditions(vdd=1.1)
        got = batch.responses(conditions=cond)
        for i, inst in enumerate(study.instances):
            assert np.array_equal(got[i], inst.evaluate(conditions=cond))


class TestFromStudy:
    def test_shares_the_per_chip_silicon(self, paths):
        study, _ = paths
        batch = BatchStudy.from_study(study)
        assert np.array_equal(
            batch.responses(t_years=10.0), np.stack(study.responses(t_years=10.0))
        )
        for i, aging in enumerate(study.agings):
            assert np.array_equal(batch.aging.delta(5.0)[i], aging.delta(5.0))

    def test_chip_aging_view_is_a_thin_slice(self, paths):
        study, batch = paths
        view = batch.aging.chip_aging(2, batch.view.chip(2))
        assert np.shares_memory(view.nbti_a, batch.aging.nbti_a)
        assert np.array_equal(view.delta(5.0), study.agings[2].delta(5.0))


class TestMemoisation:
    def test_frequency_memo_returns_same_readonly_array(self, paths):
        _, batch = paths
        f1 = batch.frequencies(t_years=5.0)
        f2 = batch.frequencies(t_years=5.0)
        assert f1 is f2
        assert not f1.flags.writeable
        with pytest.raises(ValueError):
            f1[0, 0] = 0.0

    def test_delta_memo_returns_same_readonly_array(self, paths):
        _, batch = paths
        d1 = batch.aging.delta(5.0)
        d2 = batch.aging.delta(5.0)
        assert d1 is d2
        assert not d1.flags.writeable

    def test_memo_evicts_oldest_corner(self, paths):
        _, batch = paths
        first = batch.frequencies(t_years=0.125)
        for k in range(BatchStudy.MEMO_SIZE):
            batch.frequencies(t_years=100.0 + k)
        assert (0.125, OperatingConditions.nominal()) not in batch._freq_memo
        refreshed = batch.frequencies(t_years=0.125)
        assert refreshed is not first
        assert np.array_equal(refreshed, first)


class TestPopulationView:
    def test_from_chips_round_trips(self, paths):
        study, _ = paths
        view = PopulationView.from_chips([inst.chip for inst in study.instances])
        chip = view.chip(3)
        assert np.shares_memory(chip.vth, view.vth)
        assert np.array_equal(chip.vth, study.instances[3].chip.vth)
        assert len(view.chips()) == N_CHIPS

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="n_chips"):
            PopulationView(
                vth=np.zeros((4, 3, 2)),
                tc_scale=np.zeros((4, 3, 2)),
                positions=np.zeros((4, 2)),
            )

    def test_rejects_mismatched_tc_scale(self):
        with pytest.raises(ValueError, match="tc_scale"):
            PopulationView(
                vth=np.zeros((2, 4, 3, 2)),
                tc_scale=np.zeros((2, 4, 3, 1)),
                positions=np.zeros((4, 2)),
            )

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError, match="empty"):
            PopulationView.from_chips([])


class TestBatchedReadout:
    def test_compare_pairs_chip_axis_matches_row_loop(self, paths):
        study, batch = paths
        design = batch.design
        pairs = design.pairing.pairs(design.n_ros)
        freqs = batch.frequencies()
        got = compare_pairs(freqs, pairs, design.tech, design.readout)
        for i in range(N_CHIPS):
            row = compare_pairs(freqs[i], pairs, design.tech, design.readout)
            assert np.array_equal(got[i], row)

    def test_reliability_fast_path_matches_loop(self, paths):
        _, batch = paths
        goldens = batch.responses()
        aged = batch.responses(t_years=10.0)
        fast = reliability(goldens, aged)
        slow = reliability(list(goldens), list(aged))
        np.testing.assert_allclose(fast.per_chip, slow.per_chip)
        assert fast.mean_flip_fraction == slow.mean_flip_fraction


class TestValidation:
    def test_batch_study_rejects_foreign_aging(self, paths):
        study, batch = paths
        wrong = PopulationAging.from_agings(study.agings[:3])
        with pytest.raises(ValueError, match="chips"):
            BatchStudy(batch.design, batch.view, wrong, batch.mission)

    def test_negative_years_rejected(self, paths):
        _, batch = paths
        with pytest.raises(ValueError, match="non-negative"):
            batch.aging.delta(-1.0)
