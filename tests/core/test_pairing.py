"""Pairing schemes: disjointness, widths, challenge behaviour."""

import numpy as np
import pytest

from repro.core import (
    ChainPairing,
    DistantPairing,
    NeighborPairing,
    RandomDisjointPairing,
)


class TestNeighborPairing:
    def test_pairs_adjacent(self):
        pairs = NeighborPairing().pairs(8)
        assert pairs.tolist() == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_odd_count_drops_last(self):
        pairs = NeighborPairing().pairs(7)
        assert pairs.shape == (3, 2)
        assert 6 not in pairs

    def test_disjoint(self):
        pairs = NeighborPairing().pairs(64)
        flat = pairs.ravel()
        assert len(set(flat.tolist())) == flat.size

    def test_n_bits(self):
        assert NeighborPairing().n_bits(256) == 128

    def test_challenge_ignored(self):
        p = NeighborPairing()
        assert np.array_equal(p.pairs(8, challenge=5), p.pairs(8, challenge=9))


class TestChainPairing:
    def test_overlapping_chain(self):
        pairs = ChainPairing().pairs(4)
        assert pairs.tolist() == [[0, 1], [1, 2], [2, 3]]

    def test_n_bits(self):
        assert ChainPairing().n_bits(256) == 255


class TestRandomDisjointPairing:
    def test_disjoint(self):
        pairs = RandomDisjointPairing().pairs(64, challenge=42)
        flat = pairs.ravel()
        assert len(set(flat.tolist())) == flat.size

    def test_challenge_changes_pairs(self):
        p = RandomDisjointPairing()
        a = p.pairs(64, challenge=1)
        b = p.pairs(64, challenge=2)
        assert not np.array_equal(a, b)

    def test_challenge_deterministic(self):
        p = RandomDisjointPairing()
        assert np.array_equal(p.pairs(64, challenge=7), p.pairs(64, challenge=7))

    def test_default_challenge(self):
        p = RandomDisjointPairing(default_challenge=3)
        assert np.array_equal(p.pairs(16), p.pairs(16, challenge=3))

    def test_negative_challenge_rejected(self):
        with pytest.raises(ValueError):
            RandomDisjointPairing().pairs(16, challenge=-1)


class TestDistantPairing:
    def test_half_array_separation(self):
        pairs = DistantPairing().pairs(8)
        assert pairs.tolist() == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_disjoint(self):
        pairs = DistantPairing().pairs(64)
        flat = pairs.ravel()
        assert len(set(flat.tolist())) == flat.size


class TestCommon:
    @pytest.mark.parametrize(
        "scheme",
        [NeighborPairing(), ChainPairing(), RandomDisjointPairing(), DistantPairing()],
    )
    def test_indices_in_range(self, scheme):
        pairs = scheme.pairs(33)
        assert pairs.min() >= 0
        assert pairs.max() < 33

    @pytest.mark.parametrize(
        "scheme",
        [NeighborPairing(), ChainPairing(), RandomDisjointPairing(), DistantPairing()],
    )
    def test_too_few_ros_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.pairs(1)
