"""PufDesign / RoPufInstance: geometry, evaluation semantics, area."""

import numpy as np
import pytest

from repro.core import aro_design, conventional_design
from repro.environment import OperatingConditions, celsius


@pytest.fixture(scope="module")
def instance(small_conventional_module=None):
    design = conventional_design(n_ros=32)
    return design.sample_instances(1, rng=0)[0]


class TestDesign:
    def test_bit_width(self):
        assert conventional_design(n_ros=256).n_bits == 128

    def test_with_n_ros(self):
        base = conventional_design(n_ros=256)
        big = base.with_n_ros(512)
        assert big.n_ros == 512
        assert big.n_bits == 256
        assert base.n_ros == 256

    def test_too_few_ros_rejected(self):
        with pytest.raises(ValueError):
            conventional_design(n_ros=1)

    def test_puf_area_grows_with_array(self):
        small = conventional_design(n_ros=64).puf_area()
        large = conventional_design(n_ros=256).puf_area()
        assert large > 2 * small

    def test_variation_model_matches_geometry(self):
        design = aro_design(n_ros=64, n_stages=7)
        model = design.variation_model()
        assert model.n_ros == 64
        assert model.n_stages == 7


class TestInstance:
    def test_geometry_mismatch_rejected(self):
        design32 = conventional_design(n_ros=32)
        design64 = conventional_design(n_ros=64)
        chip = design32.variation_model().sample_chip(rng=0)
        with pytest.raises(ValueError, match="ROs"):
            design64.instantiate(chip)

    def test_frequencies_shape_and_scale(self, instance):
        f = instance.frequencies()
        assert f.shape == (32,)
        assert 0.5e9 < f.mean() < 2e9

    def test_golden_response_deterministic(self, instance):
        a = instance.golden_response()
        b = instance.golden_response()
        assert np.array_equal(a, b)
        assert a.dtype == np.uint8
        assert a.shape == (16,)

    def test_noiseless_votes_rejected(self, instance):
        with pytest.raises(ValueError, match="votes"):
            instance.evaluate(votes=3)

    def test_noisy_evaluation_seeded(self, instance):
        a = instance.evaluate(noisy=True, rng=4)
        b = instance.evaluate(noisy=True, rng=4)
        assert np.array_equal(a, b)

    def test_hot_corner_slows_all_ros(self, instance):
        nominal = instance.frequencies()
        hot = instance.frequencies(OperatingConditions(temperature_k=celsius(85)))
        assert np.all(hot < nominal)

    def test_low_supply_slows_all_ros(self, instance):
        nominal = instance.frequencies()
        sagged = instance.frequencies(OperatingConditions(vdd=1.08))
        assert np.all(sagged < nominal)

    def test_corner_changes_few_bits(self, instance):
        """Environmental shift is mostly common-mode: the response at a hot
        corner differs from nominal in only a small fraction of bits."""
        golden = instance.golden_response()
        hot = instance.evaluate(
            conditions=OperatingConditions(temperature_k=celsius(85))
        )
        flips = int(np.count_nonzero(golden != hot))
        assert flips <= 3  # of 16 bits

    def test_with_chip_rebinds(self, instance):
        delta = np.full(instance.chip.vth.shape, 0.01)
        aged = instance.with_chip(instance.chip.with_delta(delta))
        assert np.all(aged.frequencies() < instance.frequencies())
        # uniform aging is common-mode: response must be unchanged
        assert np.array_equal(aged.golden_response(), instance.golden_response())


class TestDesignContrast:
    def test_aro_slower_due_to_mux_load(self):
        conv = conventional_design(n_ros=16).sample_instances(1, rng=0)[0]
        aro = aro_design(n_ros=16).sample_instances(1, rng=0)[0]
        assert aro.frequencies().mean() < conv.frequencies().mean()

    def test_names(self):
        assert conventional_design().name == "ro-puf"
        assert aro_design().name == "aro-puf"
