"""Readout datapath: comparison, counters, voting."""

import numpy as np
import pytest

from repro.core import ReadoutConfig, compare_pairs, voted_response
from repro.transistor import ptm90


@pytest.fixture(scope="module")
def tech():
    return ptm90()


@pytest.fixture(scope="module")
def config():
    return ReadoutConfig()


class TestConfig:
    def test_defaults_do_not_overflow_at_gigahertz(self, config):
        config.check_no_overflow(2.0e9)

    def test_overflow_detected(self, config):
        with pytest.raises(ValueError, match="wraps"):
            config.check_no_overflow(1e10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutConfig(window_s=0.0)
        with pytest.raises(ValueError):
            ReadoutConfig(counter_bits=2)


class TestComparePairs:
    def test_noiseless_sign(self, tech, config):
        freqs = np.array([1.0e9, 1.1e9, 0.9e9, 0.95e9])
        pairs = np.array([[0, 1], [2, 3], [1, 2]])
        bits = compare_pairs(freqs, pairs, tech, config)
        assert bits.tolist() == [0, 0, 1]
        assert bits.dtype == np.uint8

    def test_pair_validation(self, tech, config):
        freqs = np.array([1e9, 1e9])
        with pytest.raises(ValueError, match="shape"):
            compare_pairs(freqs, np.array([0, 1]), tech, config)
        with pytest.raises(ValueError, match="range"):
            compare_pairs(freqs, np.array([[0, 5]]), tech, config)

    def test_noisy_mode_flips_near_ties(self, tech, config):
        """A pair separated by much less than the jitter flips often."""
        freqs = np.array([1.0e9, 1.0e9 * (1 + 1e-6)])
        pairs = np.array([[0, 1]])
        outcomes = [
            int(compare_pairs(freqs, pairs, tech, config, noisy=True, rng=i)[0])
            for i in range(200)
        ]
        assert 50 < sum(outcomes) < 150

    def test_noisy_mode_respects_wide_margins(self, tech, config):
        freqs = np.array([1.05e9, 1.0e9])  # 5 % apart >> jitter
        pairs = np.array([[0, 1]])
        outcomes = [
            int(compare_pairs(freqs, pairs, tech, config, noisy=True, rng=i)[0])
            for i in range(50)
        ]
        assert sum(outcomes) == 50


class TestVotedResponse:
    def test_single_vote_equals_compare(self, tech, config):
        freqs = np.array([1.0e9, 1.001e9])
        pairs = np.array([[0, 1]])
        a = voted_response(freqs, pairs, tech, config, votes=1, rng=7)
        b = compare_pairs(freqs, pairs, tech, config, noisy=True, rng=7)
        assert np.array_equal(a, b)

    def test_votes_must_be_positive(self, tech, config):
        with pytest.raises(ValueError):
            voted_response(
                np.array([1e9, 1e9]), np.array([[0, 1]]), tech, config, votes=0
            )

    def test_voting_reduces_flip_rate(self, tech, config):
        """Majority voting on a marginal pair must beat a single read."""
        sep = 0.7e-3  # ~1 sigma of the pairwise jitter
        freqs = np.array([1.0e9 * (1 + sep), 1.0e9])
        pairs = np.array([[0, 1]])
        single = np.mean(
            [
                compare_pairs(freqs, pairs, tech, config, noisy=True, rng=i)[0]
                for i in range(300)
            ]
        )
        voted = np.mean(
            [
                voted_response(freqs, pairs, tech, config, votes=9, rng=i)[0]
                for i in range(300)
            ]
        )
        assert voted > single
