"""1-out-of-k enrolment selection."""

import numpy as np
import pytest

from repro.core import StaticPairing, select_stable_pairs, selection_margins


@pytest.fixture
def freqs():
    return 1e9 * (1 + 0.01 * np.random.default_rng(0).standard_normal(64))


class TestSelectStablePairs:
    def test_one_bit_per_group(self, freqs):
        pairing = select_stable_pairs(freqs, k=8)
        assert pairing.n_bits(64) == 8

    def test_pairs_stay_within_their_group(self, freqs):
        pairing = select_stable_pairs(freqs, k=8)
        for g, (a, b) in enumerate(pairing.pair_table):
            assert g * 8 <= a < (g + 1) * 8
            assert g * 8 <= b < (g + 1) * 8
            assert a != b

    def test_widest_gap_wins(self, freqs):
        pairing = select_stable_pairs(freqs, k=8)
        for g, (a, b) in enumerate(pairing.pair_table):
            group = freqs[g * 8 : (g + 1) * 8]
            selected_gap = abs(freqs[a] - freqs[b])
            assert selected_gap == pytest.approx(group.max() - group.min())

    def test_k2_degenerates_to_neighbours(self, freqs):
        pairing = select_stable_pairs(freqs, k=2)
        assert [tuple(sorted(p)) for p in pairing.pair_table] == [
            (2 * i, 2 * i + 1) for i in range(32)
        ]

    def test_margin_grows_with_k(self, freqs):
        margins = [
            selection_margins(freqs, select_stable_pairs(freqs, k)).mean()
            for k in (2, 4, 8, 16)
        ]
        assert margins == sorted(margins)

    def test_leftover_oscillators_unused(self):
        freqs = np.linspace(1.0e9, 1.1e9, 10)
        pairing = select_stable_pairs(freqs, k=4)
        assert pairing.n_bits(10) == 2
        assert max(max(p) for p in pairing.pair_table) < 8

    def test_validation(self, freqs):
        with pytest.raises(ValueError):
            select_stable_pairs(freqs, k=1)
        with pytest.raises(ValueError):
            select_stable_pairs(freqs[:3], k=8)
        with pytest.raises(ValueError):
            select_stable_pairs(freqs.reshape(8, 8), k=2)


class TestStaticPairing:
    def test_acts_as_pairing_scheme(self):
        pairing = StaticPairing(pair_table=((0, 3), (1, 2)))
        pairs = pairing.pairs(4)
        assert pairs.tolist() == [[0, 3], [1, 2]]
        assert pairing.n_bits(4) == 2

    def test_out_of_range_table_rejected(self):
        pairing = StaticPairing(pair_table=((0, 9),))
        with pytest.raises(ValueError, match="references RO"):
            pairing.pairs(4)

    def test_usable_in_a_design(self, freqs):
        """The masked pairing must plug into the ordinary evaluation path."""
        import dataclasses

        from repro.core import conventional_design

        design = conventional_design(n_ros=64)
        inst = design.sample_instances(1, rng=5)[0]
        pairing = select_stable_pairs(inst.frequencies(), k=8)
        masked = dataclasses.replace(design, pairing=pairing)
        bits = masked.instantiate(inst.chip).golden_response()
        assert bits.shape == (8,)

    def test_masked_bits_resist_noise(self):
        """Every masked bit has a wide margin, so a noisy read at the
        enrolment corner reproduces the golden response exactly."""
        import dataclasses

        from repro.core import conventional_design

        design = conventional_design(n_ros=64)
        inst = design.sample_instances(1, rng=6)[0]
        pairing = select_stable_pairs(inst.frequencies(), k=8)
        masked_inst = dataclasses.replace(design, pairing=pairing).instantiate(
            inst.chip
        )
        golden = masked_inst.golden_response()
        for seed in range(10):
            noisy = masked_inst.evaluate(noisy=True, rng=seed)
            assert np.array_equal(noisy, golden)
