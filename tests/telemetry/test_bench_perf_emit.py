"""The benchmark harness's opt-in perf-ledger emit path.

``benchmarks/_common.emit`` appends one :class:`PerfEntry` per JSON
artefact when ``REPRO_PERF_LEDGER`` names a ledger file — and writes
nothing extra otherwise.  The harness is not an installable package, so
it is loaded here the same way the tools tests load the tools.
"""

import importlib.util
import pathlib
import sys

import pytest

from repro.telemetry import PerfLedger

BENCHMARKS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture()
def bench_common(tmp_path, monkeypatch):
    """A fresh ``benchmarks/_common`` writing artefacts under tmp_path."""
    monkeypatch.syspath_prepend(str(BENCHMARKS))
    spec = importlib.util.spec_from_file_location(
        "bench_common_under_test", BENCHMARKS / "_common.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.RESULTS_DIR = tmp_path / "results"
    return module


class TestPerfLedgerEmit:
    VALUES = {"new_s": 0.5, "chips_years_per_s": 5000.0}

    def test_unset_env_writes_no_ledger(
        self, bench_common, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.delenv("REPRO_PERF_LEDGER", raising=False)
        bench_common.emit("bench_t", "table", values=self.VALUES)
        assert (bench_common.RESULTS_DIR / "bench_t.json").exists()
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_env_opt_in_appends_one_entry(
        self, bench_common, tmp_path, monkeypatch, capsys
    ):
        ledger_path = tmp_path / "perf.jsonl"
        monkeypatch.setenv("REPRO_PERF_LEDGER", str(ledger_path))
        bench_common.emit(
            "bench_t",
            "table",
            values=self.VALUES,
            memory={"peak_rss_bytes": 1.0e8},
            histograms={"site": {"p50": 0.01, "p99": 0.02}},
        )
        (entry,) = PerfLedger(ledger_path).entries()
        assert entry.bench == "bench_t"
        assert entry.values["chips_years_per_s"] == 5000.0
        assert entry.values["peak_rss_bytes"] == 1.0e8
        assert entry.quantiles == {"site.p50": 0.01, "site.p99": 0.02}

    def test_failed_append_warns_but_never_fails_the_bench(
        self, bench_common, tmp_path, monkeypatch, capsys
    ):
        # a directory at the ledger path makes the append raise
        ledger_path = tmp_path / "is_a_dir"
        ledger_path.mkdir()
        monkeypatch.setenv("REPRO_PERF_LEDGER", str(ledger_path))
        bench_common.emit("bench_t", "table", values=self.VALUES)
        assert "perf-ledger append" in capsys.readouterr().err
        # the artefact itself was still written
        assert (bench_common.RESULTS_DIR / "bench_t.json").exists()


class TestChipsYearsPerS:
    def test_throughput_arithmetic(self, bench_common):
        spec = importlib.util.spec_from_file_location(
            "bench_population_under_test", BENCHMARKS / "bench_population.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # 10 chips x 5.5 simulated years in 2 s -> 27.5 chip-years/s
        assert module.chips_years_per_s(10, [0.5, 5.0], 2.0) == pytest.approx(
            27.5
        )
