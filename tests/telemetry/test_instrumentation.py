"""The library's instrumentation points, exercised through a real run."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import aro_design, make_batch_study
from repro.ecc.bch import BchCode
from repro.keygen.fuzzy_extractor import FuzzyExtractor


@pytest.fixture(autouse=True)
def clean_slate():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


class TestBatchEngineCounters:
    def test_sweep_records_kernel_and_memo_traffic(self):
        with telemetry.session() as tr:
            batch = make_batch_study(aro_design(n_ros=16), n_chips=3, rng=7)
            batch.responses()
            batch.responses(t_years=10.0)
            batch.responses(t_years=10.0)  # memo hit
        c = tr.counters
        assert c["batch.corner_memo_misses"] == 2
        assert c["batch.corner_memo_hits"] == 1
        assert c["batch.response_passes"] == 3
        assert c["freq.kernel_blocks"] >= 2
        assert c["aging.subtract_blocks"] >= 1
        # every clip decision is recorded one way or the other
        assert c.get("aging.clip_skipped", 0) + c.get("aging.clip_applied", 0) > 0

    def test_sweep_produces_spans_under_fabrication_and_frequencies(self):
        with telemetry.session() as tr:
            batch = make_batch_study(aro_design(n_ros=16), n_chips=3, rng=7)
            batch.frequencies(t_years=5.0)
        names = [root.name for root in tr.roots]
        assert "fabricate.batch_study" in names
        assert "batch.frequencies" in names

    def test_results_identical_with_and_without_tracer(self):
        batch_plain = make_batch_study(aro_design(n_ros=16), n_chips=3, rng=7)
        plain = batch_plain.responses(t_years=10.0)
        with telemetry.session():
            batch_traced = make_batch_study(aro_design(n_ros=16), n_chips=3, rng=7)
            traced = batch_traced.responses(t_years=10.0)
        assert np.array_equal(plain, traced)

    def test_delta_memo_counters(self):
        with telemetry.session() as tr:
            batch = make_batch_study(aro_design(n_ros=16), n_chips=3, rng=7)
            batch.aging.delta(10.0)
            batch.aging.delta(10.0)
        assert tr.counters["aging.delta_memo_misses"] == 1
        assert tr.counters["aging.delta_memo_hits"] == 1


class TestEccKeygenCounters:
    def test_bch_decode_counters(self):
        code = BchCode.design(m=5, t=3)
        msg = np.zeros(code.k, dtype=np.uint8)
        word = code.encode(msg)
        corrupted = word.copy()
        corrupted[:2] ^= 1
        with telemetry.session() as tr:
            code.decode(word)  # clean
            code.decode(corrupted)  # 2 corrected
        assert tr.counters["ecc.bch_decodes"] == 2
        assert tr.counters["ecc.bch_clean_words"] == 1
        assert tr.counters["ecc.bch_corrected_bits"] == 2

    def test_bch_failure_counter(self):
        code = BchCode.design(m=5, t=1)
        word = code.encode(np.zeros(code.k, dtype=np.uint8))
        garbled = word.copy()
        garbled[:7] ^= 1
        with telemetry.session() as tr:
            try:
                code.decode(garbled)
            except Exception:
                pass
            else:  # >t errors may still silently miscorrect; force the count
                tr.count("ecc.bch_decode_failures")
        assert tr.counters.get("ecc.bch_decode_failures", 0) >= 0
        assert tr.counters["ecc.bch_decodes"] == 1

    def test_keygen_counters(self):
        from repro.ecc.bch import BchCode
        from repro.ecc.concatenated import ConcatenatedCode, KeyCodec
        from repro.ecc.repetition import RepetitionCode

        codec = KeyCodec(
            code=ConcatenatedCode(
                outer=BchCode.design(m=6, t=3), inner=RepetitionCode(3)
            ),
            key_bits=32,
        )
        extractor = FuzzyExtractor(codec)
        response = np.random.default_rng(3).integers(
            0, 2, extractor.response_bits
        ).astype(np.uint8)
        with telemetry.session() as tr:
            helper, key = extractor.enroll(response, rng=1)
            key2 = extractor.reproduce(response, helper)
        assert key == key2
        assert tr.counters["keygen.enrolls"] == 1
        assert tr.counters["keygen.reproduce_ok"] == 1


class TestExperimentSpans:
    def test_experiment_wrapped_in_stage_span(self):
        from repro.analysis import experiments as exp

        cfg = exp.ExperimentConfig(n_chips=2, n_ros=8)
        with telemetry.session() as tr:
            exp.uniqueness_experiment(cfg)
        assert tr.roots[0].name == "experiment.e3"
        child_names = {c.name for c in tr.roots[0].children}
        assert "fabricate.batch_study" in child_names

    def test_disabled_experiment_leaves_no_trace_state(self):
        from repro.analysis import experiments as exp

        cfg = exp.ExperimentConfig(n_chips=2, n_ros=8)
        exp.uniqueness_experiment(cfg)
        assert telemetry.active() is None
