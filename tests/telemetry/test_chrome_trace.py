"""Chrome trace_event export: lanes, error spans, synthetic skip, counters."""

import json

import pytest

from repro.telemetry import (
    MAIN_TID,
    TRACE_PID,
    Span,
    Tracer,
    chrome_trace_dict,
    chrome_trace_events,
    write_chrome_trace,
)


def _slices(events):
    return [e for e in events if e["ph"] == "X"]


@pytest.fixture
def traced():
    tr = Tracer()
    with tr.span("experiment.e2"):
        with tr.span("batch.frequencies", t_years=10.0):
            pass
    return tr


class TestSpanEvents:
    def test_complete_events_per_span(self, traced):
        events = chrome_trace_events(traced)
        slices = _slices(events)
        assert [e["name"] for e in slices] == [
            "experiment.e2",
            "batch.frequencies",
        ]
        for e in slices:
            assert e["pid"] == TRACE_PID and e["tid"] == MAIN_TID
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0

    def test_timestamps_relative_to_handshake(self, traced):
        """ts is µs since the tracer's construction — near zero, not the
        raw perf_counter epoch."""
        slices = _slices(chrome_trace_events(traced))
        assert all(e["ts"] < 60e6 for e in slices)  # within a minute

    def test_attrs_become_args(self, traced):
        sl = _slices(chrome_trace_events(traced))[1]
        assert sl["args"] == {"t_years": 10.0}

    def test_metadata_names_the_coordinator_lane(self, traced):
        events = chrome_trace_events(traced)
        meta = {
            (e["name"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M"
        }
        assert meta[("process_name", MAIN_TID)] == "repro run"
        assert meta[("thread_name", MAIN_TID)] == "coordinator"


class TestErrorSpans:
    def test_raising_span_exported_with_error_cat(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (sl,) = _slices(chrome_trace_events(tr))
        assert sl["cat"] == "error"
        assert sl["args"]["error"] is True


class TestSyntheticSpans:
    def test_synthetic_spans_skipped(self):
        """The coordinator's per-shard summary spans carry no clock-valid
        timestamps; the timeline must not show them."""
        tr = Tracer()
        with tr.span("real"):
            with tr.span("shard-summary", synthetic=True):
                with tr.span("child-of-synthetic"):
                    pass
        names = [e["name"] for e in _slices(chrome_trace_events(tr))]
        assert names == ["real"]


class TestRemoteLanes:
    def _lane_span(self, name, start_ns, end_ns):
        sp = Span(name)
        sp.start_ns = start_ns
        sp.end_ns = end_ns
        return sp

    def test_one_tid_per_lane_sorted_by_label(self):
        tr = Tracer()
        t0 = tr.perf0_ns
        tr.add_remote_lane("worker-1", [self._lane_span("b", t0 + 200, t0 + 300)])
        tr.add_remote_lane("worker-0", [self._lane_span("a", t0 + 100, t0 + 400)])
        events = chrome_trace_events(tr)
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes["coordinator"] == MAIN_TID
        assert lanes["worker-0"] == 1
        assert lanes["worker-1"] == 2
        by_name = {e["name"]: e for e in _slices(events)}
        assert by_name["a"]["tid"] == 1
        assert by_name["b"]["tid"] == 2
        assert by_name["a"]["ts"] == pytest.approx(0.1)
        assert by_name["a"]["dur"] == pytest.approx(0.3)


    def test_numeric_lane_tails_sort_naturally(self):
        """req-2 must come before req-10: lexicographic order scrambles
        Perfetto rows exactly when request concurrency passes ten."""
        tr = Tracer()
        t0 = tr.perf0_ns
        for k in (10, 2, 0):
            tr.add_remote_lane(
                f"req-{k}", [self._lane_span(f"s{k}", t0 + 100, t0 + 200)]
            )
        events = chrome_trace_events(tr)
        order = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert order == ["coordinator", "req-0", "req-2", "req-10"]


class TestSamplerCounters:
    class _FakeSampler:
        def __init__(self, samples):
            self.samples = samples

    def test_rss_and_probe_counter_tracks(self):
        tr = Tracer()
        sampler = self._FakeSampler(
            [
                {
                    "t_ns": tr.perf0_ns + 1000,
                    "rss_bytes": 3 * 2**20,
                    "span": None,
                    "probes": {"store.materialised_blocks:x": 5.0},
                }
            ]
        )
        counters = [
            e for e in chrome_trace_events(tr, sampler) if e["ph"] == "C"
        ]
        assert {e["name"] for e in counters} == {
            "rss_mb",
            "store.materialised_blocks:x",
        }
        rss = next(e for e in counters if e["name"] == "rss_mb")
        assert rss["args"]["rss_mb"] == pytest.approx(3.0)

    def test_none_rss_sample_skipped(self):
        tr = Tracer()
        sampler = self._FakeSampler(
            [{"t_ns": tr.perf0_ns, "rss_bytes": None, "span": None}]
        )
        assert not [
            e for e in chrome_trace_events(tr, sampler) if e["ph"] == "C"
        ]


class TestWrite:
    def test_file_is_loadable_object_form(self, tmp_path, traced):
        path = write_chrome_trace(tmp_path / "sub" / "run.trace.json", traced)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload == chrome_trace_dict(traced)
        assert len(payload["traceEvents"]) >= 4  # 2 metadata + 2 spans
