"""The single-file HTML perf report."""

from repro.telemetry import (
    Span,
    host_fingerprint,
    package_version,
    platform_triple,
    render_perf_report,
    write_perf_report,
)

STABLE = [100.0, 100.5, 99.5, 100.2, 99.8, 100.1]


def make_lane():
    inner = Span("kernel")
    inner.start_ns, inner.end_ns = 2_000_000, 8_000_000
    root = Span("sweep")
    root.start_ns, root.end_ns = 0, 10_000_000
    root.children.append(inner)
    inner.parent = root
    return {"coordinator": [root]}


class TestRenderPerfReport:
    def test_self_contained_html_with_provenance(self):
        html_text = render_perf_report({"b:wall_s": STABLE})
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<script" not in html_text  # no JS, survives mail/CI
        assert package_version() in html_text
        assert platform_triple() in html_text
        assert host_fingerprint() in html_text

    def test_regression_marked_with_verdict_class(self):
        # wall_s rising 20% -> regress for a lower-is-better metric
        html_text = render_perf_report({"b:wall_s": STABLE + [120.0]})
        assert '<td class="regress">regress</td>' in html_text
        assert "svg" in html_text  # sparkline rendered

    def test_quiet_series_is_stable(self):
        html_text = render_perf_report({"b:wall_s": STABLE + [100.2]})
        assert ">stable<" in html_text
        # CSS may mention the class; the verdict table must not
        assert '<td class="regress">' not in html_text

    def test_empty_series(self):
        assert "(empty perf ledger)" in render_perf_report({})

    def test_metric_names_escaped(self):
        html_text = render_perf_report({"b<script>:wall_s": STABLE})
        assert "b<script>:wall_s" not in html_text
        assert "b&lt;script&gt;:wall_s" in html_text

    def test_attribution_sections_from_lanes(self):
        html_text = render_perf_report({}, lanes=make_lane())
        assert "Self-time attribution" in html_text
        assert "Critical path" in html_text
        assert "kernel" in html_text and "sweep" in html_text

    def test_footer_documents_detector(self):
        html_text = render_perf_report({}, window=7)
        assert "median+MAD" in html_text
        assert "window 7" in html_text


class TestWritePerfReport:
    def test_writes_file_creating_parents(self, tmp_path):
        path = write_perf_report(
            tmp_path / "deep" / "report.html", {"b:wall_s": STABLE}
        )
        assert path.exists()
        assert "<!DOCTYPE html>" in path.read_text()
