"""Span-forest attribution: self time, critical path, collapsed stacks."""

import pytest

from repro.telemetry import (
    Span,
    Tracer,
    aggregate,
    chrome_trace_dict,
    collapsed_stacks,
    critical_path,
    lanes_from_chrome_trace,
    lanes_from_tracer,
    render_collapsed,
    render_critical_path,
    render_profile,
    write_collapsed,
)

MS = 1_000_000  # ns per millisecond


def make_span(name, start_ms, end_ms, children=(), attrs=None):
    span = Span(name, attrs)
    span.start_ns = int(start_ms * MS)
    span.end_ns = int(end_ms * MS)
    for child in children:
        child.parent = span
        span.children.append(child)
    return span


class TestLanesFromTracer:
    def test_coordinator_plus_sorted_remote_lanes(self):
        tr = Tracer()
        with tr.span("root"):
            pass
        tr.add_remote_lane("worker-1", [make_span("b", 2, 3)])
        tr.add_remote_lane("worker-0", [make_span("a", 0, 1)])
        lanes = lanes_from_tracer(tr)
        assert list(lanes) == ["coordinator", "worker-0", "worker-1"]
        assert [s.name for s in lanes["coordinator"]] == ["root"]

    def test_synthetic_roots_dropped(self):
        tr = Tracer()
        with tr.span("real"):
            pass
        with tr.span("shard-summary", synthetic=True):
            pass
        lanes = lanes_from_tracer(tr)
        assert [s.name for s in lanes["coordinator"]] == ["real"]


class TestAggregate:
    def test_self_is_total_minus_children(self):
        child = make_span("child", 2, 8)
        root = make_span("root", 0, 10, [child])
        rows = {r.label: r for r in aggregate({"lane": [root]})}
        assert rows["root"].total_ns == 10 * MS
        assert rows["root"].self_ns == 4 * MS
        assert rows["child"].self_ns == rows["child"].total_ns == 6 * MS
        assert rows["root"].calls == rows["child"].calls == 1

    def test_same_label_sums_across_lanes(self):
        lanes = {
            "a": [make_span("work", 0, 5)],
            "b": [make_span("work", 0, 7)],
        }
        (row,) = aggregate(lanes)
        assert row.calls == 2
        assert row.total_ns == 12 * MS

    def test_negative_self_clamped_to_zero(self):
        # overlapping async children can exceed the parent's duration
        kids = [make_span("k", 0, 8), make_span("k", 1, 9)]
        root = make_span("root", 0, 10, kids)
        rows = {r.label: r for r in aggregate({"lane": [root]})}
        assert rows["root"].self_ns == 0

    def test_sorted_by_self_time_descending(self):
        lanes = {
            "lane": [make_span("small", 0, 1), make_span("big", 2, 9)]
        }
        rows = aggregate(lanes)
        assert [r.label for r in rows] == ["big", "small"]

    def test_render_empty_and_limit(self):
        assert "no spans" in render_profile([])
        rows = aggregate({"lane": [make_span("a", 0, 1), make_span("b", 2, 9)]})
        text = render_profile(rows, limit=1)
        assert "b" in text and "\na" not in text


class TestCriticalPath:
    def test_deepest_active_span_wins(self):
        inner = make_span("inner", 3, 7)
        root = make_span("root", 0, 10, [inner])
        segments = critical_path({"lane": [root]})
        assert [(s.label, s.start_ns, s.end_ns) for s in segments] == [
            ("root", 0, 3 * MS),
            ("inner", 3 * MS, 7 * MS),
            ("root", 7 * MS, 10 * MS),
        ]

    def test_worker_lane_bounds_the_middle(self):
        lanes = {
            "coordinator": [make_span("run", 0, 10)],
            "worker-0": [make_span("shard", 2, 8)],
        }
        segments = critical_path(lanes)
        assert [(s.lane, s.label) for s in segments] == [
            ("coordinator", "run"),
            ("worker-0", "shard"),
            ("coordinator", "run"),
        ]

    def test_durations_sum_to_busy_wall_time_with_gaps(self):
        lanes = {"lane": [make_span("a", 0, 2), make_span("b", 5, 7)]}
        segments = critical_path(lanes)
        assert sum(s.duration_ns for s in segments) == 4 * MS
        assert [s.label for s in segments] == ["a", "b"]

    def test_empty_and_zero_duration_spans(self):
        assert critical_path({}) == []
        assert critical_path({"lane": [make_span("instant", 5, 5)]}) == []

    def test_render_mentions_covered_time_and_shares(self):
        segments = critical_path({"lane": [make_span("work", 0, 2)]})
        text = render_critical_path(segments)
        assert "0.002s covered" in text
        assert "lane:work" in text and "100.0%" in text
        assert "no critical path" in render_critical_path([])


class TestCollapsedStacks:
    def test_nested_stack_weights_are_self_time_us(self):
        inner = make_span("inner", 3, 7)
        root = make_span("outer", 0, 10, [inner])
        stacks = collapsed_stacks({"lane": [root]})
        assert stacks == {
            "lane;outer": 6000,
            "lane;outer;inner": 4000,
        }

    def test_zero_self_time_emits_no_line(self):
        child = make_span("child", 0, 10)
        root = make_span("outer", 0, 10, [child])
        stacks = collapsed_stacks({"lane": [root]})
        assert "lane;outer" not in stacks
        assert stacks["lane;outer;child"] == 10_000

    def test_semicolons_in_names_mapped_to_commas(self):
        root = make_span("a;b", 0, 1)
        stacks = collapsed_stacks({"la;ne": [root]})
        assert list(stacks) == ["la,ne;a,b"]

    def test_tiny_positive_self_time_never_drops_to_zero_weight(self):
        root = make_span("fast", 0, 0.0001)  # 100 ns -> rounds to 0 us
        stacks = collapsed_stacks({"lane": [root]})
        assert stacks["lane;fast"] == 1

    def test_render_and_write(self, tmp_path):
        stacks = {"lane;b": 2, "lane;a": 1}
        text = render_collapsed(stacks)
        assert text.splitlines() == ["lane;a 1", "lane;b 2"]
        path = write_collapsed(tmp_path / "deep" / "flame.txt", stacks)
        assert path.read_text() == text + "\n"
        empty = write_collapsed(tmp_path / "empty.txt", {})
        assert empty.read_text() == ""


class TestChromeTraceRoundTrip:
    def test_rebuilt_lanes_match_live_tracer(self):
        tr = Tracer()
        with tr.span("run"):
            with tr.span("fabricate"):
                pass
            with tr.span("sweep"):
                with tr.span("kernel"):
                    pass
        tr.add_remote_lane("worker-0", [make_span("shard", 0, 5)])
        live = collapsed_stacks(lanes_from_tracer(tr))
        rebuilt = collapsed_stacks(
            lanes_from_chrome_trace(chrome_trace_dict(tr))
        )
        # microsecond rounding through ts/dur may shift weights by 1
        assert set(rebuilt) == set(live)
        for stack, weight in live.items():
            assert abs(rebuilt[stack] - weight) <= 2

    def test_bare_event_list_accepted(self):
        events = [
            {"name": "work", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1000.0},
        ]
        lanes = lanes_from_chrome_trace(events)
        assert [s.name for s in lanes["tid-0"]] == ["work"]

    def test_thread_name_metadata_labels_lanes(self):
        events = {
            "traceEvents": [
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3,
                 "args": {"name": "worker-3"}},
                {"name": "shard", "ph": "X", "pid": 1, "tid": 3,
                 "ts": 10.0, "dur": 50.0},
            ]
        }
        lanes = lanes_from_chrome_trace(events)
        assert list(lanes) == ["worker-3"]

    def test_nesting_rebuilt_by_containment(self):
        events = [
            {"name": "outer", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 100.0},
            {"name": "inner", "ph": "X", "pid": 1, "tid": 0,
             "ts": 20.0, "dur": 30.0},
            {"name": "second", "ph": "X", "pid": 1, "tid": 0,
             "ts": 60.0, "dur": 10.0},
        ]
        (root,) = lanes_from_chrome_trace(events)["tid-0"]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "second"]

    def test_counter_events_ignored_and_bad_payload_rejected(self):
        events = [
            {"name": "rss", "ph": "C", "pid": 1, "tid": 0, "ts": 0.0},
            {"name": "work", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 5.0},
        ]
        lanes = lanes_from_chrome_trace(events)
        assert [s.name for s in lanes["tid-0"]] == ["work"]
        with pytest.raises(ValueError, match="traceEvents"):
            lanes_from_chrome_trace({"traceEvents": "nope"})
