"""Streaming histograms: error bound, mergeability, serialisation."""

import math

import numpy as np
import pytest

from repro.telemetry import (
    GROWTH,
    QUANTILE_RELATIVE_ERROR,
    Histogram,
    Tracer,
    flatten_summaries,
    summarise,
)


class TestErrorBound:
    def test_documented_bound_is_under_five_percent(self):
        assert QUANTILE_RELATIVE_ERROR == pytest.approx(math.sqrt(GROWTH) - 1)
        assert QUANTILE_RELATIVE_ERROR < 0.05

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_quantiles_within_bound_on_lognormal(self, q):
        """The advertised <=5 % contract, checked against exact numpy
        percentiles on a heavy-tailed latency-like distribution."""
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=-7.0, sigma=1.5, size=20_000)
        hist = Histogram()
        hist.observe_many(values)
        exact = float(np.percentile(values, q * 100.0))
        got = hist.quantile(q)
        assert abs(got - exact) / exact <= QUANTILE_RELATIVE_ERROR + 1e-9

    def test_extremes_and_count_are_exact(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(size=500)
        hist = Histogram()
        hist.observe_many(values)
        assert hist.count == len(hist) == 500
        assert hist.min == values.min()
        assert hist.max == values.max()
        assert hist.mean == pytest.approx(values.mean())
        assert hist.quantile(1.0) == values.max()
        assert hist.quantile(0.0) == values.min()


class TestMerge:
    def test_split_merge_equals_single(self):
        """Folding shard histograms equals observing everything in one —
        the cross-worker quantile guarantee (exact, not just close)."""
        rng = np.random.default_rng(3)
        values = rng.lognormal(sigma=2.0, size=4_000)
        single = Histogram()
        single.observe_many(values)
        shards = [Histogram() for _ in range(4)]
        for shard, chunk in zip(shards, np.array_split(values, 4)):
            shard.observe_many(chunk)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.buckets == single.buckets
        assert merged.count == single.count
        assert merged.min == single.min and merged.max == single.max
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    def test_merge_empty_into_live_is_identity(self):
        live = Histogram()
        live.observe_many([1.0, 2.0, 3.0])
        before = live.to_dict()
        live.merge(Histogram())
        assert live.to_dict() == before

    def test_merge_live_into_empty_equals_source(self):
        src = Histogram()
        src.observe_many([0.5, 4.0])
        sink = Histogram()
        sink.merge(src)
        assert sink.to_dict() == src.to_dict()

    def test_merge_two_empties_stays_empty(self):
        a = Histogram()
        a.merge(Histogram())
        assert a.count == 0
        assert math.isnan(a.quantile(0.5))

    def test_from_dict_round_trip_after_merge(self):
        """A merged state must survive serialisation bit-for-bit — the
        perf ledger recomputes quantiles from exactly this round trip."""
        a, b = Histogram(), Histogram()
        a.observe_many([1e-6, 3.0, 3.0])
        b.observe_many([0.0, -1.0, 7.5])
        a.merge(b)
        back = Histogram.from_dict(a.to_dict())
        assert back.to_dict() == a.to_dict()
        for q in (0.5, 0.95, 0.99):
            assert back.quantile(q) == a.quantile(q)

    def test_merge_accepts_serialised_form_via_tracer(self):
        a, b = Histogram(), Histogram()
        a.observe_many([1.0, 2.0])
        b.observe_many([4.0, 8.0])
        tr = Tracer()
        tr.merge_histogram("m", a.to_dict())
        tr.merge_histogram("m", b.to_dict())
        assert tr.histograms["m"].count == 4
        assert tr.histograms["m"].max == 8.0


class TestSerialisation:
    def test_roundtrip_exact(self):
        hist = Histogram()
        hist.observe_many([0.0, -1.0, 1e-6, 3.5e-3, 0.2, 0.2, 7.0])
        back = Histogram.from_dict(hist.to_dict())
        assert back.buckets == hist.buckets
        assert back.count == hist.count
        assert back.total == hist.total
        assert back.min == hist.min and back.max == hist.max
        assert back.n_zero == hist.n_zero

    def test_growth_mismatch_rejected(self):
        d = Histogram().to_dict()
        d["growth"] = GROWTH * 1.01
        with pytest.raises(ValueError, match="layout mismatch"):
            Histogram.from_dict(d)
        d["growth"] = None
        with pytest.raises(ValueError, match="layout mismatch"):
            Histogram.from_dict(d)

    def test_empty_roundtrip(self):
        back = Histogram.from_dict(Histogram().to_dict())
        assert back.count == 0
        assert math.isnan(back.quantile(0.5))


class TestEdgeCases:
    def test_nonpositive_values_land_in_zero_bucket(self):
        hist = Histogram()
        hist.observe_many([0.0, -2.0, 5.0])
        assert hist.n_zero == 2
        assert hist.count == 3
        assert hist.min == -2.0
        # a rank inside the underflow bucket reports the exact minimum
        assert hist.quantile(0.5) == -2.0

    def test_empty_histogram_quantile_nan(self):
        hist = Histogram()
        assert math.isnan(hist.quantile(0.5))
        summary = hist.summary()
        assert summary["count"] == 0.0
        assert math.isnan(summary["p99"])

    def test_single_value_all_quantiles_exact(self):
        hist = Histogram()
        hist.observe(0.125)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.125

    def test_single_bucket_quantile_within_documented_bound(self):
        """Observations crowded into ONE log bucket: the interior
        quantile estimate may sit anywhere in the bucket, but must stay
        within the documented <=5 % relative error of every true value."""
        lo = 1.0e-3
        hi = lo * (1.0 + QUANTILE_RELATIVE_ERROR)  # same bucket by design
        values = [lo, (lo + hi) / 2.0, hi]
        hist = Histogram()
        hist.observe_many(values)
        assert len(hist.buckets) == 1
        got = hist.quantile(0.5)
        for true in values:
            assert abs(got - true) / true <= QUANTILE_RELATIVE_ERROR + 1e-9


class TestSummaries:
    def test_summarise_sorted_by_name(self):
        hists = {"b": Histogram(), "a": Histogram()}
        hists["a"].observe(1.0)
        hists["b"].observe(2.0)
        assert list(summarise(hists)) == ["a", "b"]

    def test_flatten_drops_non_finite(self):
        hists = {"live": Histogram(), "empty": Histogram()}
        hists["live"].observe_many([1.0, 2.0])
        flat = flatten_summaries(hists)
        assert flat["live.count"] == 2.0
        assert flat["live.p50"] > 0.0
        # the empty histogram's NaN mean/quantiles must not leak
        assert all(math.isfinite(v) for v in flat.values())
        assert "empty.mean" not in flat

    def test_flatten_quantile_filter(self):
        hists = {"m": Histogram()}
        hists["m"].observe(1.0)
        flat = flatten_summaries(hists, quantiles=("p99",))
        assert list(flat) == ["m.p99"]
