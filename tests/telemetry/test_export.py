"""Trace export: span-tree rendering and the --metrics-out payload."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    METRICS_FORMAT,
    RunManifest,
    Tracer,
    render_counters,
    render_span_tree,
    trace_to_dict,
    write_metrics,
)


@pytest.fixture
def traced():
    tr = Tracer()
    with tr.span("experiment.e2"):
        with tr.span("fabricate", n_chips=4):
            pass
        with tr.span("sweep"):
            pass
    tr.count("batch.corner_memo_hits", 3)
    tr.gauge("memo.size", 12)
    return tr


class TestRenderTree:
    def test_contains_every_span_name(self, traced):
        text = render_span_tree(traced)
        for name in ("experiment.e2", "fabricate", "sweep"):
            assert name in text

    def test_children_indented_under_parent(self, traced):
        lines = render_span_tree(traced).splitlines()
        root_line = next(l for l in lines if "experiment.e2" in l)
        child_line = next(l for l in lines if "fabricate" in l)
        assert child_line.index("fabricate") > root_line.index("experiment.e2")

    def test_attrs_rendered(self, traced):
        assert "n_chips=4" in render_span_tree(traced)

    def test_child_share_of_parent_rendered(self, traced):
        assert "%" in render_span_tree(traced)

    def test_empty_tracer(self):
        assert "no spans" in render_span_tree(Tracer())

    def test_counters_rendered(self, traced):
        text = render_counters(traced)
        assert "batch.corner_memo_hits" in text
        assert "memo.size" in text
        assert "no counters" in render_counters(Tracer())


class TestTraceToDict:
    def test_payload_sections(self, traced):
        payload = trace_to_dict(traced)
        assert payload["format"] == METRICS_FORMAT
        assert payload["counters"] == {"batch.corner_memo_hits": 3.0}
        assert payload["gauges"] == {"memo.size": 12.0}
        assert [s["name"] for s in payload["spans"]] == ["experiment.e2"]

    def test_manifest_embedded_when_given(self, traced):
        manifest = RunManifest.collect(seed=7)
        payload = trace_to_dict(traced, manifest)
        assert payload["manifest"]["seed"] == 7
        telemetry.validate_manifest(payload["manifest"])

    def test_payload_is_json_ready(self, traced):
        json.dumps(trace_to_dict(traced, RunManifest.collect()))


class TestWriteMetrics:
    def test_writes_valid_json(self, traced, tmp_path):
        out = tmp_path / "sub" / "metrics.json"
        written = write_metrics(out, traced, RunManifest.collect(seed=1))
        assert written == out
        payload = json.loads(out.read_text())
        assert payload["format"] == METRICS_FORMAT
        telemetry.validate_manifest(payload["manifest"])

    def test_manifest_optional(self, traced, tmp_path):
        payload = json.loads(
            write_metrics(tmp_path / "m.json", traced).read_text()
        )
        assert "manifest" not in payload


class TestHistogramSections:
    def test_format_is_three(self):
        assert METRICS_FORMAT == 3

    def test_histograms_always_present_and_sorted(self, traced):
        payload = trace_to_dict(traced)
        assert payload["histograms"] == {}
        traced.observe("z.metric", 1.0)
        traced.observe("a.metric", 2.0)
        payload = trace_to_dict(traced)
        assert list(payload["histograms"]) == ["a.metric", "z.metric"]
        assert payload["histograms"]["a.metric"]["count"] == 1

    def test_resource_samples_when_sampler_given(self, traced, tmp_path):
        from repro.telemetry import ResourceSampler

        sampler = ResourceSampler()
        sampler.sample_once()
        payload = json.loads(
            write_metrics(tmp_path / "m.json", traced, None, sampler).read_text()
        )
        assert len(payload["resource_samples"]) == 1
        assert "rss_bytes" in payload["resource_samples"][0]
        payload = trace_to_dict(traced)
        assert "resource_samples" not in payload

    def test_render_histograms_table(self, traced):
        from repro.telemetry import render_histograms

        assert "no histograms" in render_histograms(traced)
        traced.observe("batch.block_s", 0.002)
        traced.observe("batch.block_s", 0.004)
        text = render_histograms(traced)
        assert "batch.block_s" in text
        assert "p99" in text.splitlines()[0]
