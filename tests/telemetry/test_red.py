"""RedMetrics: rate/error/duration bookkeeping and its export shapes."""

import pytest

from repro.telemetry import Histogram, RedMetrics, Tracer
from repro.telemetry.red import RED_FORMAT


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def red():
    return RedMetrics(clock=FakeClock())


class TestObserve:
    def test_counts_requests_per_endpoint(self, red):
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "rejected", 0.002)
        red.observe("enroll", "ok", 0.010)
        assert red.requests == {"auth": 2, "enroll": 1}
        assert red.total_requests() == 3

    def test_rejected_is_not_an_error(self, red):
        """Refusing an impostor is the service working — availability
        must not punish it, or an attack reads as an outage."""
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "rejected", 0.001)
        assert red.total_errors() == 0
        assert red.availability("auth") == 1.0

    def test_error_taxonomy_per_class(self, red):
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "unknown_chip", 0.001)
        red.observe("auth", "unknown_chip", 0.001)
        red.observe("auth", "bad_request", 0.001)
        assert red.errors["auth"] == {"unknown_chip": 2, "bad_request": 1}
        assert red.error_count("auth") == 3
        assert red.availability("auth") == pytest.approx(0.25)

    def test_idle_endpoint_availability_is_one(self, red):
        assert red.availability("auth") == 1.0

    def test_rate_uses_elapsed_window(self, red):
        for _ in range(10):
            red.observe("auth", "ok", 0.001)
        red._clock.t = 2.0
        assert red.rate_per_s("auth") == pytest.approx(5.0)

    def test_durations_split_by_outcome(self, red):
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "unknown_chip", 0.100)
        ok = red.endpoint_histogram("auth", "ok")
        assert ok.count == 1
        merged = red.endpoint_histogram("auth", None)
        assert merged.count == 2


class TestMetrics:
    def test_flat_keys(self, red):
        red.observe("auth", "ok", 0.001)
        red._clock.t = 1.0
        metrics = red.metrics()
        for suffix in (
            "requests",
            "rate_per_s",
            "availability",
            "error_rate",
            "p50_ms",
            "p99_ms",
            "p999_ms",
        ):
            assert f"auth.{suffix}" in metrics

    def test_latency_judged_over_ok_only(self, red):
        """An error fast-path must not flatter the tail quantiles."""
        red.observe("auth", "ok", 0.010)
        red.observe("auth", "unknown_chip", 0.0001)
        metrics = red.metrics()
        assert metrics["auth.p50_ms"] == pytest.approx(10.0, rel=0.15)

    def test_no_successes_drops_latency_keys(self, red):
        red.observe("auth", "unknown_chip", 0.001)
        metrics = red.metrics()
        assert "auth.p99_ms" not in metrics
        assert metrics["auth.error_rate"] == 1.0


class TestExport:
    def test_to_dict_shape(self, red):
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "rejected", 0.002)
        red.observe("auth", "unknown_chip", 0.003)
        state = red.to_dict()
        assert state["format"] == RED_FORMAT
        block = state["endpoints"]["auth"]
        assert block["requests"] == 3
        assert block["errors"] == {"unknown_chip": 1}
        assert block["outcomes"] == {"ok": 1, "rejected": 1, "unknown_chip": 1}
        assert sum(block["outcomes"].values()) == block["requests"]
        assert set(state["durations_ms"]) == {
            "service.auth.ok.ms",
            "service.auth.rejected.ms",
            "service.auth.unknown_chip.ms",
        }

    def test_durations_roundtrip_as_histograms(self, red):
        red.observe("auth", "ok", 0.005)
        state = red.to_dict()
        hist = Histogram.from_dict(state["durations_ms"]["service.auth.ok.ms"])
        assert hist.count == 1

    def test_summaries_match_bench_shape(self, red):
        red.observe("auth", "ok", 0.001)
        summaries = red.summaries()
        summary = summaries["service.auth.ok.ms"]
        assert {"count", "p50", "p99"} <= set(summary)

    def test_publish_folds_into_tracer(self, red):
        red.observe("auth", "ok", 0.001)
        red.observe("auth", "unknown_chip", 0.002)
        tracer = Tracer()
        red.publish(tracer)
        assert tracer.counters["service.auth.requests"] == 2.0
        assert tracer.counters["service.auth.errors.unknown_chip"] == 1.0
        assert tracer.histograms["service.auth.ok.ms"].count == 1
