"""Monitor fold/render: progress bars, rates, RSS sparkline, resilience."""

import json

from repro.telemetry import MonitorState, parse_events, render_monitor


def _lines(*records):
    return [json.dumps(r) for r in records]


def _progress(stage, done, total=None, elapsed=0.0, **extra):
    rec = {"event": "progress", "stage": stage, "done": done,
           "elapsed_s": elapsed}
    if total is not None:
        rec["total"] = total
    rec.update(extra)
    return rec


class TestParse:
    def test_progress_folds_into_stages(self):
        state = parse_events(
            _lines(
                {"event": "run.start", "command": "run", "experiment": "e2"},
                _progress("chips", 10, total=50, elapsed=1.0),
                _progress("chips", 30, total=50, elapsed=2.0, eta_s=1.0),
            )
        )
        stage = state.stages["chips"]
        assert stage.done == 30 and stage.total == 50
        assert stage.fraction == 0.6
        assert stage.rate == 20.0  # (30-10)/(2.0-1.0)
        assert stage.eta_s == 1.0
        assert state.running
        assert state.command == "run" and state.experiment == "e2"
        assert state.elapsed_s == 2.0

    def test_run_end_flips_running(self):
        state = parse_events(
            _lines({"event": "run.start"}, {"event": "run.end"})
        )
        assert not state.running
        assert state.n_events == 2

    def test_malformed_lines_skipped_not_fatal(self):
        state = parse_events(
            ["not json", "", json.dumps(["a", "list"]),
             json.dumps({"no_event_key": 1})]
            + _lines(_progress("chips", 1))
        )
        assert state.n_skipped == 3
        assert state.n_events == 1

    def test_stage_restart_resets_rate_window(self):
        """done going backwards = the next corner of a sweep started; the
        rolling rate must reflect the current pass, not span both."""
        state = parse_events(
            _lines(
                _progress("chips", 40, elapsed=1.0),
                _progress("chips", 50, elapsed=2.0),
                _progress("chips", 5, elapsed=3.0),
            )
        )
        stage = state.stages["chips"]
        assert stage.done == 5
        assert stage.rate is None  # one point since the reset

    def test_samples_feed_rss_series_and_span(self):
        state = parse_events(
            _lines(
                {"event": "sample", "rss_bytes": 1048576, "span": "fab"},
                {"event": "sample", "rss_bytes": 2097152, "span": None},
            )
        )
        assert state.rss_series == [1048576.0, 2097152.0]
        assert state.last_rss_bytes == 2097152.0
        assert state.current_span == "fab"  # None does not clear it

    def test_incremental_parse_keeps_state(self):
        state = parse_events(_lines(_progress("chips", 10, elapsed=1.0)))
        parse_events(_lines(_progress("chips", 20, elapsed=2.0)), state)
        assert state.stages["chips"].done == 20
        assert state.n_events == 2

    def test_rss_series_bounded(self):
        lines = _lines(
            *({"event": "sample", "rss_bytes": i} for i in range(500))
        )
        state = parse_events(lines)
        assert len(state.rss_series) == 120
        assert state.rss_series[-1] == 499.0


class TestRender:
    def test_empty_state(self):
        assert render_monitor(MonitorState()) == "(no events yet)"

    def test_dashboard_rows(self):
        state = parse_events(
            _lines(
                {"event": "run.start", "command": "run", "experiment": "e2",
                 "elapsed_s": 0.0},
                _progress("chips", 25, total=50, elapsed=2.5),
                {"event": "sample", "rss_bytes": 1 << 20, "span": "sweep"},
            )
        )
        text = render_monitor(state)
        assert "run: run e2" in text
        assert "[running]" in text
        assert "span: sweep" in text
        assert "chips" in text and "25/50" in text
        assert "rss :" in text and "1 MiB" in text

    def test_finished_and_skipped_annotations(self):
        state = parse_events(
            _lines({"event": "run.start"}, {"event": "run.end"})
            + ["garbage"]
        )
        text = render_monitor(state)
        assert "[finished]" in text
        assert "+1 skipped" in text

    def test_total_less_stage_renders_count_only(self):
        state = parse_events(_lines(_progress("chips", 7)))
        text = render_monitor(state)
        assert " 7" in text and "/" not in text.split("chips", 1)[1]

    def test_gib_formatting(self):
        state = parse_events(
            _lines({"event": "sample", "rss_bytes": 3 << 30})
        )
        assert "3.00 GiB" in render_monitor(state)

    def test_loop_lag_series_folds_and_renders(self):
        """A serving run's event-loop-lag probe echoes through sampler
        events; the dashboard grows a lag sparkline next to rss."""
        state = parse_events(
            _lines(
                {"event": "sample", "rss_bytes": 1 << 20, "loop_lag_ms": 0.4},
                {"event": "sample", "rss_bytes": 1 << 20, "loop_lag_ms": 2.75},
            )
        )
        assert state.last_loop_lag_ms == 2.75
        assert state.lag_series == [0.4, 2.75]
        text = render_monitor(state)
        assert "lag :" in text
        assert "now 2.75 ms" in text
        assert "peak 2.75 ms" in text

    def test_no_lag_events_no_lag_row(self):
        state = parse_events(
            _lines({"event": "sample", "rss_bytes": 1 << 20})
        )
        assert "lag :" not in render_monitor(state)
