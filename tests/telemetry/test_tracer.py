"""Tracer core: span nesting, timing monotonicity, counters, no-op path."""

import time

import pytest

from repro import telemetry
from repro.telemetry import Span, Tracer


@pytest.fixture(autouse=True)
def clean_slate():
    """Every test starts and ends with no installed tracer."""
    telemetry.uninstall()
    yield
    telemetry.uninstall()


class TestSpanNesting:
    def test_children_attach_to_active_span(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                with tr.span("grandchild"):
                    pass
            with tr.span("sibling"):
                pass
        assert [r.name for r in tr.roots] == ["root"]
        root = tr.roots[0]
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_multiple_roots(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r.name for r in tr.roots] == ["a", "b"]

    def test_start_end_pairs_match_context_manager(self):
        tr = Tracer()
        outer = tr.start_span("outer")
        inner = tr.start_span("inner")
        tr.end_span(inner)
        tr.end_span(outer)
        assert outer.children == [inner]
        assert inner.parent is outer

    def test_end_unwinds_forgotten_children(self):
        tr = Tracer()
        outer = tr.start_span("outer")
        tr.start_span("forgotten")
        tr.end_span(outer)  # must close the forgotten child too
        assert outer.end_ns is not None
        assert outer.children[0].end_ns is not None
        assert tr.active_span is None

    def test_double_end_rejected(self):
        tr = Tracer()
        sp = tr.start_span("x")
        tr.end_span(sp)
        with pytest.raises(ValueError, match="already ended"):
            tr.end_span(sp)

    def test_attrs_recorded(self):
        tr = Tracer()
        with tr.span("s", t_years=10.0, corner="nominal") as sp:
            pass
        assert sp.attrs == {"t_years": 10.0, "corner": "nominal"}


class TestSpanTiming:
    def test_duration_positive_and_monotone(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                time.sleep(0.001)
        assert inner.duration_ns > 0
        assert outer.duration_ns >= inner.duration_ns
        assert outer.duration_s == pytest.approx(outer.duration_ns / 1e9)

    def test_child_interval_inside_parent(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_open_span_duration_grows(self):
        tr = Tracer()
        sp = tr.start_span("open")
        d1 = sp.duration_ns
        d2 = sp.duration_ns
        assert d2 >= d1
        tr.end_span(sp)

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.roots[0].end_ns is not None
        assert tr.active_span is None


class TestCounters:
    def test_counts_accumulate(self):
        tr = Tracer()
        tr.count("hits")
        tr.count("hits")
        tr.count("hits", 3)
        assert tr.counters == {"hits": 5.0}

    def test_gauge_keeps_last_value(self):
        tr = Tracer()
        tr.gauge("rss", 10.0)
        tr.gauge("rss", 7.5)
        assert tr.gauges == {"rss": 7.5}

    def test_module_level_count_routes_to_installed(self):
        tr = telemetry.install(Tracer())
        telemetry.count("a", 2)
        telemetry.gauge("g", 1.0)
        assert tr.counters == {"a": 2.0}
        assert tr.gauges == {"g": 1.0}


class TestDisabledPath:
    def test_module_api_is_noop_without_tracer(self):
        assert not telemetry.enabled()
        assert telemetry.active() is None
        assert telemetry.start_span("x") is None
        telemetry.end_span(None)  # must not raise
        telemetry.count("x")
        telemetry.gauge("x", 1.0)
        with telemetry.span("y") as sp:
            assert sp is None

    def test_uninstall_without_install_is_noop(self):
        assert telemetry.uninstall() is None

    def test_double_install_rejected(self):
        telemetry.install(Tracer())
        with pytest.raises(RuntimeError, match="already installed"):
            telemetry.install(Tracer())

    def test_session_installs_and_removes(self):
        with telemetry.session() as tr:
            assert telemetry.active() is tr
            telemetry.count("inside")
        assert telemetry.active() is None
        assert tr.counters == {"inside": 1.0}

    def test_uninstall_closes_open_spans(self):
        tr = telemetry.install(Tracer())
        telemetry.start_span("left-open")
        telemetry.uninstall()
        assert tr.roots[0].end_ns is not None


class TestMemoryMode:
    def test_spans_record_peak_bytes(self):
        with telemetry.session(memory=True) as tr:
            with tr.span("alloc"):
                blob = bytearray(256 * 1024)
                del blob
        sp = tr.roots[0]
        assert sp.mem_peak_bytes is not None
        # tracemalloc's accounting may be a few bytes shy of the nominal size
        assert sp.mem_peak_bytes >= 200 * 1024

    def test_non_memory_spans_have_no_peak(self):
        with telemetry.session() as tr:
            with tr.span("plain"):
                pass
        assert tr.roots[0].mem_peak_bytes is None

    def test_peak_rss_reported_on_posix(self):
        tr = Tracer()
        rss = tr.peak_rss_kb()
        assert rss is None or rss > 0


class TestErrorPaths:
    def test_tracer_span_records_error_flag(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("stage"):
                raise ValueError("boom")
        sp = tr.roots[0]
        assert sp.error
        assert sp.end_ns is not None
        assert tr.active_span is None

    def test_module_span_records_error_flag(self):
        with telemetry.session() as tr:
            with pytest.raises(RuntimeError):
                with telemetry.span("stage"):
                    raise RuntimeError("boom")
        assert tr.roots[0].error

    def test_module_span_disabled_error_path_is_noop(self):
        with pytest.raises(RuntimeError):
            with telemetry.span("stage"):
                raise RuntimeError("boom")  # no tracer: nothing to flag

    def test_error_only_on_raising_span_not_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with pytest.raises(RuntimeError):
                with tr.span("inner"):
                    raise RuntimeError("x")
        outer = tr.roots[0]
        assert not outer.error
        assert outer.children[0].error

    def test_error_flag_serialised(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.roots[0].to_dict()["error"] is True
        assert tr.roots[0].to_timed_dict()["error"] is True
        rebuilt = Span.from_timed_dict(tr.roots[0].to_timed_dict())
        assert rebuilt.error


class TestPeakRss:
    def test_linux_reads_vmhwm(self):
        peak = telemetry.peak_rss_bytes()
        assert peak is None or peak > 0

    def test_fallback_without_proc(self):
        """No /proc (macOS): ru_maxrss keeps the reading populated."""
        peak = telemetry.peak_rss_bytes(proc_status="/nonexistent/status")
        assert peak is not None and peak > 0

    def test_darwin_unit_is_bytes_linux_is_kib(self):
        """ru_maxrss is KiB on Linux but bytes on macOS; the fallback
        must apply the platform-correct factor."""
        as_linux = telemetry.peak_rss_bytes(
            proc_status="/nonexistent", platform_name="linux"
        )
        as_darwin = telemetry.peak_rss_bytes(
            proc_status="/nonexistent", platform_name="darwin"
        )
        assert as_linux == as_darwin * 1024

    def test_corrupt_proc_status_falls_back(self, tmp_path):
        bad = tmp_path / "status"
        bad.write_text("VmHWM: not-a-number kB\n")
        peak = telemetry.peak_rss_bytes(proc_status=str(bad))
        assert peak is not None and peak > 0


class TestClockHandshake:
    def test_pair_is_back_to_back(self):
        wall_ns, perf_ns = telemetry.clock_handshake()
        assert wall_ns > 0 and perf_ns > 0

    def test_offset_rebases_worker_spans(self):
        """The documented alignment contract: two handshakes on the same
        host produce an offset that maps one perf timeline onto the
        other to within the read skew."""
        coord = telemetry.clock_handshake()
        worker = telemetry.clock_handshake()
        offset = (worker[0] - worker[1]) - (coord[0] - coord[1])
        rebased = worker[1] + offset
        # the "worker" handshake happened just after the coordinator's,
        # so its rebased perf timestamp lands just after coord's perf
        # reading — within generous CI scheduling noise
        assert rebased >= coord[1]
        assert rebased - coord[1] < 1_000_000_000


class TestSpanToDict:
    def test_tree_serialises(self):
        tr = Tracer()
        with tr.span("root", k=1):
            with tr.span("leaf"):
                pass
        d = tr.roots[0].to_dict()
        assert d["name"] == "root"
        assert d["attrs"] == {"k": 1}
        assert d["duration_ns"] > 0
        assert [c["name"] for c in d["children"]] == ["leaf"]

    def test_numpy_attrs_coerced(self):
        np = pytest.importorskip("numpy")
        sp = Span("s", {"t": np.float64(1.5), "n": np.int64(3)})
        d = sp.to_dict()
        assert d["attrs"] == {"t": 1.5, "n": 3}
        assert isinstance(d["attrs"]["t"], float)
