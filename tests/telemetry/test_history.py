"""Ledger history: sparklines, rolling baselines, drift flags."""

import pytest

from repro.telemetry import (
    LedgerEntry,
    RunManifest,
    history_rows,
    render_history,
    sparkline,
)
from repro.telemetry.history import SPARK_BLOCKS, metric_series


@pytest.fixture(scope="module")
def manifest():
    return RunManifest.collect(seed=5, config={"n_chips": 4})


def entries_for(series, manifest, experiment="e2", key="flips"):
    return [
        LedgerEntry.collect(experiment, {key: v}, manifest) for v in series
    ]


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp_uses_full_range(self):
        s = sparkline([1.0, 2.0, 3.0, 4.0])
        assert s[0] == SPARK_BLOCKS[0]
        assert s[-1] == SPARK_BLOCKS[-1]
        assert len(s) == 4

    def test_flat_series_renders_mid_block(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_BLOCKS[3] * 3

    def test_single_value(self):
        assert sparkline([1.0]) == SPARK_BLOCKS[3]


class TestMetricSeries:
    def test_chronological_per_metric(self, manifest):
        entries = entries_for([1.0, 2.0, 3.0], manifest)
        entries += entries_for([9.0], manifest, experiment="e3", key="uniq")
        series = metric_series(entries)
        assert series == {"e2.flips": [1.0, 2.0, 3.0], "e3.uniq": [9.0]}


class TestHistoryRows:
    def test_baseline_is_mean_of_preceding_window(self, manifest):
        entries = entries_for([10.0, 20.0, 30.0, 40.0], manifest)
        (row,) = history_rows(entries, window=3)
        assert row.latest == 40.0
        assert row.baseline == pytest.approx(20.0)  # mean(10, 20, 30)
        assert row.change == pytest.approx(1.0)
        assert row.drift

    def test_window_truncates_old_values(self, manifest):
        entries = entries_for([100.0, 10.0, 10.0, 10.0], manifest)
        (row,) = history_rows(entries, window=2)
        assert row.baseline == pytest.approx(10.0)  # the 100 falls outside

    def test_single_value_has_no_baseline(self, manifest):
        (row,) = history_rows(entries_for([5.0], manifest))
        assert row.baseline is None and row.change is None and not row.drift

    def test_within_threshold_not_drift(self, manifest):
        entries = entries_for([10.0, 10.0, 10.5], manifest)
        (row,) = history_rows(entries, threshold=0.10)
        assert not row.drift

    def test_zero_baseline(self, manifest):
        (zero,) = history_rows(entries_for([0.0, 0.0], manifest))
        assert zero.change == 0.0 and not zero.drift
        (jump,) = history_rows(entries_for([0.0, 1.0], manifest))
        assert jump.change == float("inf") and jump.drift

    def test_metric_substring_filter(self, manifest):
        entries = entries_for([1.0], manifest) + entries_for(
            [2.0], manifest, experiment="e3", key="uniq"
        )
        rows = history_rows(entries, metrics=["e3"])
        assert [r.metric for r in rows] == ["e3.uniq"]

    def test_last_truncates_series(self, manifest):
        entries = entries_for([1.0, 2.0, 3.0, 4.0], manifest)
        (row,) = history_rows(entries, last=2)
        assert row.values == (3.0, 4.0)
        assert row.n_runs == 2

    def test_parameter_validation(self, manifest):
        entries = entries_for([1.0], manifest)
        with pytest.raises(ValueError, match="window"):
            history_rows(entries, window=0)
        with pytest.raises(ValueError, match="threshold"):
            history_rows(entries, threshold=0.0)


class TestRenderHistory:
    def test_empty_ledger(self):
        assert render_history([]) == "(empty ledger)"

    def test_no_matching_metrics(self, manifest):
        text = render_history(entries_for([1.0], manifest), metrics=["nope"])
        assert "no matching metrics" in text

    def test_renders_sparkline_latest_and_drift(self, manifest):
        entries = entries_for([10.0, 10.0, 10.0, 20.0], manifest)
        text = render_history(entries)
        assert "e2.flips" in text
        assert any(block in text for block in SPARK_BLOCKS)
        assert "latest" in text and "vs baseline" in text
        assert "<< drift" in text
        assert "1 metric(s) drifted" in text

    def test_header_counts_runs_and_experiments(self, manifest):
        entries = entries_for([1.0, 2.0], manifest) + entries_for(
            [3.0], manifest, experiment="e3", key="uniq"
        )
        header = render_history(entries).splitlines()[0]
        assert "3 entries" in header
        assert "e2, e3" in header

    def test_quiet_ledger_reports_no_drift(self, manifest):
        text = render_history(entries_for([10.0, 10.0], manifest))
        assert "no drift" in text


class TestRobustHistory:
    """history_rows(robust=True): median+MAD verdicts replace the
    rolling-mean drift flag."""

    QUIET = [100.0, 100.5, 99.5, 100.2, 99.8, 100.1]

    def test_short_series_stays_in_warmup(self, manifest):
        entries = entries_for([10.0, 20.0, 30.0], manifest)
        (row,) = history_rows(entries, robust=True, window=5)
        assert row.verdict == "warmup"
        assert not row.drift
        assert row.baseline is None

    def test_outlier_history_does_not_fake_drift(self, manifest):
        """One wild run in history fires the naive mean flag but not the
        robust one — the whole point of the median+MAD discipline."""
        series = self.QUIET + [300.0, 100.2]
        naive_rows = history_rows(
            entries_for(series, manifest), window=len(series) - 1
        )
        assert naive_rows[0].drift  # the mean is polluted
        (robust,) = history_rows(
            entries_for(series, manifest),
            robust=True,
            window=len(series) - 1,
        )
        assert robust.verdict == "stable"
        assert not robust.drift

    def test_real_movement_still_flags(self, manifest):
        entries = entries_for(self.QUIET + [80.0], manifest)
        (row,) = history_rows(entries, robust=True, window=6)
        assert row.verdict == "down"
        assert row.drift
        assert row.baseline == pytest.approx(100.05)  # trailing median

    def test_classic_rows_have_no_verdict(self, manifest):
        (row,) = history_rows(entries_for([1.0, 2.0], manifest))
        assert row.verdict is None

    def test_render_robust_warmup_and_footer(self, manifest):
        text = render_history(
            entries_for([1.0, 2.0], manifest), robust=True
        )
        assert "(warmup)" in text
        assert "<< drift" not in text
        assert "median+MAD noise band" in text

    def test_render_robust_movement_labels_median(self, manifest):
        text = render_history(
            entries_for(self.QUIET + [80.0], manifest), robust=True, window=6
        )
        assert "vs median" in text
        assert "<< drift" in text
        assert "1 metric(s) moved beyond their median+MAD noise band" in text


class TestSparklineDegenerateRanges:
    """The monitor's RSS row feeds arbitrary series in; every degenerate
    range must render (never divide by zero or index out of band)."""

    def test_negative_flat_series_is_mid_scale(self):
        assert sparkline([-3.0, -3.0]) == SPARK_BLOCKS[3] * 2

    def test_tiny_range_stays_in_band(self):
        s = sparkline([1.0, 1.0 + 1e-15, 1.0])
        assert len(s) == 3
        assert set(s) <= set(SPARK_BLOCKS)

    def test_extreme_range_endpoints(self):
        s = sparkline([1e-9, 1e9])
        assert s[0] == SPARK_BLOCKS[0]
        assert s[-1] == SPARK_BLOCKS[-1]

    def test_monotone_ramp_is_nondecreasing(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0, 4.0])
        ranks = [SPARK_BLOCKS.index(ch) for ch in s]
        assert ranks == sorted(ranks)
