"""AsyncTracer: contextvar isolation, request lanes, loop-lag probe.

The isolation tests are the serving layer's load-bearing contract: two
requests interleaving on one event loop must never see each other's
spans, and the exported trace must re-nest each request's subtree under
its own lane.
"""

import asyncio
import time

import pytest

from repro import telemetry
from repro.telemetry import AsyncTracer, EventLoopLagProbe, current_trace_id
from repro.telemetry.chrome import chrome_trace_events
from repro.telemetry.sampler import _probes


@pytest.fixture(autouse=True)
def clean_slate():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


def _lane_events(events, label):
    """The X events on the lane whose thread_name metadata is ``label``."""
    tid = next(
        e["tid"]
        for e in events
        if e["ph"] == "M"
        and e["name"] == "thread_name"
        and e["args"]["name"] == label
    )
    return [e for e in events if e["ph"] == "X" and e["tid"] == tid]


class TestContextIsolation:
    def test_concurrent_requests_do_not_leak_spans(self):
        """Interleaved gather tasks each keep their own span stack."""
        tracer = telemetry.install(AsyncTracer())

        async def handler(i):
            with tracer.request("auth", idx=i) as span:
                tid = span.attrs["trace_id"]
                assert current_trace_id() == tid
                with tracer.span(f"inner-{i}"):
                    # suspend mid-span so neighbours interleave here
                    await asyncio.sleep(0.001 * (i % 3))
                    assert current_trace_id() == tid
                await asyncio.sleep(0)
            return span

        spans = asyncio.run(self._gather(handler, 8))
        for i, span in enumerate(spans):
            assert [c.name for c in span.children] == [f"inner-{i}"]
            assert all(c.parent is span for c in span.children)
        assert len({s.attrs["trace_id"] for s in spans}) == 8

    @staticmethod
    async def _gather(handler, n):
        return await asyncio.gather(*(handler(i) for i in range(n)))

    def test_nesting_survives_await(self):
        tracer = telemetry.install(AsyncTracer())

        async def flow():
            with tracer.request("auth") as span:
                with tracer.span("decode"):
                    await asyncio.sleep(0.001)
                    with tracer.span("verify"):
                        await asyncio.sleep(0)
            return span

        span = asyncio.run(flow())
        assert [c.name for c in span.children] == ["decode"]
        assert [g.name for g in span.children[0].children] == ["verify"]

    def test_fanned_out_task_inherits_request_parent(self):
        """create_task snapshots the context: the subtask's spans attach
        to the request that spawned it, not to the coordinator."""
        tracer = telemetry.install(AsyncTracer())

        async def flow():
            async def side_work():
                with tracer.span("side"):
                    await asyncio.sleep(0)

            with tracer.request("auth") as span:
                await asyncio.create_task(side_work())
            return span

        span = asyncio.run(flow())
        assert [c.name for c in span.children] == ["side"]

    def test_subtask_cannot_corrupt_parent_stack(self):
        """A task that forgets to close its span only damages its own
        context copy — the request closes cleanly regardless."""
        tracer = telemetry.install(AsyncTracer())

        async def flow():
            async def leaky():
                tracer.start_span("leaked")  # never ended by the task
                await asyncio.sleep(0)

            with tracer.request("auth") as span:
                await asyncio.create_task(leaky())
                with tracer.span("after"):
                    pass
            return span

        span = asyncio.run(flow())
        assert span.end_ns is not None
        names = [c.name for c in span.children]
        assert "after" in names  # parented on the request, not the leak

    def test_request_detaches_from_ambient_span(self):
        tracer = telemetry.install(AsyncTracer())
        with tracer.span("serve"):
            with tracer.request("auth") as req:
                pass
            with tracer.span("post"):
                pass
        serve = tracer.roots[0]
        assert req.parent is None
        assert [c.name for c in serve.children] == ["post"]

    def test_current_trace_id_outside_request_is_none(self):
        tracer = telemetry.install(AsyncTracer())
        assert current_trace_id() is None
        with tracer.span("ambient"):
            assert current_trace_id() is None

    def test_current_trace_id_none_for_foreign_tracer(self):
        stale = AsyncTracer()
        with stale.request("auth"):
            # a *different* tracer now owns the installed slot
            telemetry.install(AsyncTracer())
            assert current_trace_id() is None

    def test_error_marks_request_span(self):
        tracer = telemetry.install(AsyncTracer())
        with pytest.raises(RuntimeError):
            with tracer.request("auth") as span:
                raise RuntimeError("boom")
        assert span.error is True
        assert span.end_ns is not None
        assert tracer.remote_lanes["req-0"] == [span]


class TestRequestLanes:
    def test_sequential_requests_recycle_one_lane(self):
        tracer = AsyncTracer()
        for _ in range(3):
            with tracer.request("auth"):
                pass
        assert set(tracer.remote_lanes) == {"req-0"}
        assert len(tracer.remote_lanes["req-0"]) == 3
        assert tracer.roots == []  # all moved off the coordinator

    def test_lane_count_equals_peak_concurrency(self):
        tracer = AsyncTracer()

        async def burst(n):
            barrier = asyncio.Barrier(n)

            async def handler():
                with tracer.request("auth"):
                    await barrier.wait()

            await asyncio.gather(*(handler() for _ in range(n)))

        asyncio.run(burst(4))
        assert set(tracer.remote_lanes) == {f"req-{k}" for k in range(4)}
        # the next sequential request reuses the lowest freed lane
        with tracer.request("auth"):
            pass
        assert len(tracer.remote_lanes["req-0"]) == 2

    def test_exported_trace_renests_request_subtree(self):
        tracer = AsyncTracer()
        with tracer.request("auth") as span:
            with tracer.span("decode"):
                time.sleep(0.001)
        events = chrome_trace_events(tracer)
        lane = _lane_events(events, "req-0")
        by_name = {e["name"]: e for e in lane}
        assert set(by_name) == {"request.auth", "decode"}
        parent, child = by_name["request.auth"], by_name["decode"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
        assert span.attrs["trace_id"] == 1

    def test_trace_ids_are_monotone_and_unique(self):
        tracer = AsyncTracer()
        ids = []
        for _ in range(5):
            with tracer.request("auth") as span:
                ids.append(span.attrs["trace_id"])
        assert ids == [1, 2, 3, 4, 5]

    def test_custom_lane_prefix(self):
        tracer = AsyncTracer(lane_prefix="conn")
        with tracer.request("auth"):
            pass
        assert set(tracer.remote_lanes) == {"conn-0"}


class TestClose:
    def test_close_ends_forgotten_spans(self):
        tracer = AsyncTracer()
        span = tracer.start_span("forgotten")
        tracer.close()
        assert span.end_ns is not None

    def test_end_span_twice_raises(self):
        tracer = AsyncTracer()
        span = tracer.start_span("once")
        tracer.end_span(span)
        with pytest.raises(ValueError, match="already ended"):
            tracer.end_span(span)


class TestEventLoopLagProbe:
    def test_records_lag_when_loop_blocks(self):
        async def run():
            async with EventLoopLagProbe(interval_s=0.005) as probe:
                await asyncio.sleep(0.01)  # at least one clean tick
                time.sleep(0.05)  # block the loop: the next wake is late
                await asyncio.sleep(0.01)
            return probe

        probe = asyncio.run(run())
        assert probe.n_ticks >= 1
        assert probe.max_lag_ms >= 20.0

    def test_registers_and_unregisters_probe(self):
        async def run():
            probe = EventLoopLagProbe(interval_s=0.005, name="test_lag_ms")
            probe.start()
            probe.start()  # idempotent
            assert "test_lag_ms" in _probes
            await probe.stop()
            await probe.stop()  # idempotent
            assert "test_lag_ms" not in _probes

        asyncio.run(run())

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLoopLagProbe(interval_s=0.0)
