"""Resource sampler: ticks, probes, decimation, slot discipline, RSS."""

import pytest

from repro import telemetry
from repro.telemetry import (
    ResourceSampler,
    Tracer,
    active_sampler,
    current_rss_bytes,
    install_sampler,
    register_probe,
    sampler_session,
    uninstall_sampler,
    unregister_probe,
)


@pytest.fixture(autouse=True)
def clean_slate():
    telemetry.uninstall()
    uninstall_sampler()
    yield
    telemetry.uninstall()
    uninstall_sampler()


class TestSampleOnce:
    def test_fields(self):
        sampler = ResourceSampler(hz=100.0)
        sample = sampler.sample_once()
        assert sample["t_ns"] > 0
        assert sample["rss_bytes"] is None or sample["rss_bytes"] > 0
        assert sample["span"] is None
        assert sampler.samples == [sample]
        assert sampler.n_ticks == 1

    def test_attributes_tick_to_open_span(self):
        tr = telemetry.install(Tracer())
        sampler = ResourceSampler()
        sp = tr.start_span("store.block")
        try:
            assert sampler.sample_once()["span"] == "store.block"
        finally:
            tr.end_span(sp)
        assert sampler.sample_once()["span"] is None

    def test_probes_sampled_and_raising_probe_survives(self):
        register_probe("good", lambda: 7.0)
        register_probe("bad", lambda: 1 / 0)
        try:
            sample = ResourceSampler().sample_once()
            assert sample["probes"] == {"good": 7.0}
        finally:
            unregister_probe("good")
            unregister_probe("bad")

    def test_probe_reregister_last_wins_and_unregister(self):
        register_probe("p", lambda: 1.0)
        register_probe("p", lambda: 2.0)
        try:
            assert ResourceSampler().sample_once()["probes"] == {"p": 2.0}
        finally:
            unregister_probe("p")
        unregister_probe("p")  # absent: no-op
        assert "probes" not in ResourceSampler().sample_once()


class TestDecimation:
    def test_series_stays_bounded_with_full_extent(self):
        sampler = ResourceSampler(max_samples=16)
        for _ in range(200):
            sampler.sample_once()
        assert len(sampler.samples) < 16
        assert sampler.n_ticks == 200
        assert sampler._stride > 1
        # first sample survives every 2:1 decimation — full time extent
        times = [s["t_ns"] for s in sampler.samples]
        assert times == sorted(times)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="hz"):
            ResourceSampler(hz=0.0)
        with pytest.raises(ValueError, match="max_samples"):
            ResourceSampler(max_samples=1)


class TestThreadLifecycle:
    def test_stop_takes_final_sample(self):
        sampler = ResourceSampler(hz=1000.0)
        sampler.start()
        sampler.stop()
        assert sampler.samples  # even a sub-interval run records one tick
        sampler.stop()  # idempotent

    def test_double_start_rejected(self):
        sampler = ResourceSampler(hz=1000.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                sampler.start()
        finally:
            sampler.stop()

    def test_context_manager_form(self):
        with ResourceSampler(hz=1000.0) as sampler:
            pass
        assert sampler.samples


class TestInstallSlot:
    def test_install_uninstall_roundtrip(self):
        sampler = install_sampler(ResourceSampler())
        assert active_sampler() is sampler
        assert uninstall_sampler() is sampler
        assert active_sampler() is None
        assert uninstall_sampler() is None  # disabled: no-op

    def test_double_install_rejected(self):
        install_sampler(ResourceSampler())
        with pytest.raises(RuntimeError, match="already installed"):
            install_sampler(ResourceSampler())

    def test_sampler_session(self):
        with sampler_session(hz=1000.0) as sampler:
            assert active_sampler() is sampler
        assert active_sampler() is None
        assert sampler.samples


class TestToDicts:
    def test_relative_seconds_and_probe_passthrough(self):
        sampler = ResourceSampler()
        sampler.sample_once()
        register_probe("p", lambda: 3.0)
        try:
            sampler.sample_once()
        finally:
            unregister_probe("p")
        first_ns = sampler.samples[0]["t_ns"]
        dicts = sampler.to_dicts()
        assert dicts[0]["t_s"] == 0.0
        assert dicts[1]["t_s"] >= 0.0
        assert dicts[1]["probes"] == {"p": 3.0}
        # explicit epoch (a tracer's perf0_ns) shifts the origin
        shifted = sampler.to_dicts(first_ns - 1_000_000)
        assert shifted[0]["t_s"] == pytest.approx(1e-3)

    def test_empty_series(self):
        assert ResourceSampler().to_dicts() == []


class TestCurrentRss:
    def test_linux_proc_path(self):
        rss = current_rss_bytes()
        assert rss is None or rss > 0

    def test_fallback_without_proc(self):
        """Off-Linux (no /proc) the reading falls back to ru_maxrss —
        still positive, documented as a monotone high-water mark."""
        rss = current_rss_bytes(proc_status="/nonexistent/status")
        assert rss is not None and rss > 0
