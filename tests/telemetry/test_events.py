"""ProgressEmitter: throttling, caps, ETA, and the installed-slot API."""

import json

import pytest

from repro import telemetry
from repro.telemetry import EVENTS_FORMAT, ProgressEmitter


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestEmit:
    def test_first_event_written(self, tmp_path, clock):
        e = ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        assert e.emit("stage", 1, 10) is True
        (rec,) = read_events(tmp_path / "ev.jsonl")
        assert rec["format"] == EVENTS_FORMAT
        assert rec["event"] == "progress"
        assert rec["stage"] == "stage"
        assert rec["done"] == 1 and rec["total"] == 10

    def test_throttled_within_interval(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl", min_interval_s=0.25, clock=clock
        )
        assert e.emit("s", 1, 10)
        clock.advance(0.1)
        assert not e.emit("s", 2, 10)
        assert e.n_throttled == 1
        clock.advance(0.2)  # now 0.3s past the last write
        assert e.emit("s", 3, 10)
        assert e.n_events == 2

    def test_force_bypasses_throttle(self, tmp_path, clock):
        e = ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        e.emit("s", 1, 10)
        assert e.emit("s", 2, 10, force=True)

    def test_max_events_cap(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl", min_interval_s=0.0, max_events=3, clock=clock
        )
        written = sum(e.emit("s", i, 100) for i in range(1, 50))
        assert written == 3
        assert e.n_events == 3
        assert len(read_events(tmp_path / "ev.jsonl")) == 3

    def test_eta_from_stage_elapsed(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl", min_interval_s=0.0, clock=clock
        )
        e.emit("s", 1, 10)  # stage first seen at t=0 of the stage
        clock.advance(2.0)
        e.emit("s", 5, 10)  # 2s for 4 more items... linear from first-seen
        recs = read_events(tmp_path / "ev.jsonl")
        # 5 of 10 done in 2s since first seen -> 2s remaining
        assert recs[1]["eta_s"] == pytest.approx(2.0)

    def test_no_eta_when_complete_or_unknown(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl", min_interval_s=0.0, clock=clock
        )
        e.emit("s", None, None)
        clock.advance(1.0)
        e.emit("s", 10, 10)
        recs = read_events(tmp_path / "ev.jsonl")
        assert all("eta_s" not in r for r in recs)

    def test_extra_fields_pass_through(self, tmp_path, clock):
        e = ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        e.emit("s", 1, 2, chip=7)
        (rec,) = read_events(tmp_path / "ev.jsonl")
        assert rec["chip"] == 7

    def test_closed_emitter_drops(self, tmp_path, clock):
        e = ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        e.close()
        assert e.closed
        assert not e.emit("s", 1, 2)

    def test_creates_parent_dirs(self, tmp_path, clock):
        path = tmp_path / "deep" / "nested" / "ev.jsonl"
        ProgressEmitter(path, clock=clock).emit("s")
        assert path.exists()

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="min_interval_s"):
            ProgressEmitter(tmp_path / "e.jsonl", min_interval_s=-1.0)
        with pytest.raises(ValueError, match="max_events"):
            ProgressEmitter(tmp_path / "e.jsonl", max_events=0)


class TestRotation:
    """--events-max-bytes: size-capped rotation for long-lived servers."""

    def _emitter(self, tmp_path, clock, max_bytes=1024):
        return ProgressEmitter(
            tmp_path / "ev.jsonl",
            min_interval_s=0.0,
            max_events=10**6,
            max_bytes=max_bytes,
            clock=clock,
        )

    def test_rotates_to_single_backup(self, tmp_path, clock):
        e = self._emitter(tmp_path, clock)
        for i in range(40):  # ~100 bytes/line: several rotations
            e.emit("s", i, 40, force=True)
            clock.advance(1.0)
        e.close()
        assert e.n_rotations >= 2
        live, backup = e.path, e.path.with_name("ev.jsonl.1")
        assert live.exists() and backup.exists()
        assert set(tmp_path.iterdir()) == {live, backup}  # one generation
        # both sides stay line-parseable after the rename
        for path in (live, backup):
            assert read_events(path)

    def test_disk_usage_stays_bounded(self, tmp_path, clock):
        e = self._emitter(tmp_path, clock, max_bytes=1024)
        for i in range(200):
            e.emit("s", i, 200, force=True)
            clock.advance(1.0)
        e.close()
        total = sum(p.stat().st_size for p in tmp_path.iterdir())
        assert total <= 2 * 1024 + 256  # ~2x cap (+ one line of slack)

    def test_never_rotates_without_cap(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl",
            min_interval_s=0.0,
            max_events=10**6,
            clock=clock,
        )
        for i in range(100):
            e.emit("s", i, 100, force=True)
            clock.advance(1.0)
        assert e.n_rotations == 0
        assert not (tmp_path / "ev.jsonl.1").exists()

    def test_append_mode_counts_existing_bytes(self, tmp_path, clock):
        """A reopened heartbeat file rotates on the *file* size, not just
        the bytes this emitter wrote."""
        path = tmp_path / "ev.jsonl"
        path.write_text("x" * 1000 + "\n")
        e = ProgressEmitter(
            path, min_interval_s=0.0, max_bytes=1024, clock=clock
        )
        e.emit("s", 1, 2, force=True)
        clock.advance(1.0)
        e.emit("s", 2, 2, force=True)
        assert e.n_rotations >= 1

    def test_rejects_tiny_cap(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ProgressEmitter(tmp_path / "e.jsonl", max_bytes=100)


class TestLifecycle:
    def test_bypasses_throttle_but_not_cap(self, tmp_path, clock):
        e = ProgressEmitter(
            tmp_path / "ev.jsonl", min_interval_s=10.0, max_events=2, clock=clock
        )
        assert e.lifecycle("run.start")
        assert e.lifecycle("run.end")  # throttle would have dropped this
        assert not e.lifecycle("too.late")  # the cap still holds
        recs = read_events(tmp_path / "ev.jsonl")
        assert [r["event"] for r in recs] == ["run.start", "run.end"]

    def test_carries_fields(self, tmp_path, clock):
        e = ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        e.lifecycle("run.start", command="run", experiment="e2")
        (rec,) = read_events(tmp_path / "ev.jsonl")
        assert rec["command"] == "run" and rec["experiment"] == "e2"


class TestInstalledSlot:
    def test_progress_is_noop_when_disabled(self):
        assert telemetry.active_emitter() is None
        telemetry.progress("stage", 1, 10)  # must not raise

    def test_install_routes_progress(self, tmp_path, clock):
        with telemetry.emitter_session(
            tmp_path / "ev.jsonl", min_interval_s=0.0, clock=clock
        ) as e:
            telemetry.progress("stage", 3, 9)
            assert telemetry.active_emitter() is e
            assert e.n_events == 1
        assert telemetry.active_emitter() is None
        (rec,) = read_events(tmp_path / "ev.jsonl")
        assert rec["done"] == 3 and rec["total"] == 9

    def test_double_install_raises(self, tmp_path, clock):
        with telemetry.emitter_session(tmp_path / "a.jsonl", clock=clock):
            with pytest.raises(RuntimeError, match="already installed"):
                telemetry.install_emitter(
                    ProgressEmitter(tmp_path / "b.jsonl", clock=clock)
                )

    def test_uninstall_closes(self, tmp_path, clock):
        e = telemetry.install_emitter(
            ProgressEmitter(tmp_path / "ev.jsonl", clock=clock)
        )
        assert telemetry.uninstall_emitter() is e
        assert e.closed

    def test_uninstall_when_disabled_is_noop(self):
        assert telemetry.uninstall_emitter() is None


class TestInstrumentedLoops:
    def test_batched_sweep_emits_progress(self, tmp_path, clock):
        from repro.core import aro_design, make_batch_study

        with telemetry.emitter_session(
            tmp_path / "ev.jsonl", min_interval_s=0.0, clock=clock
        ) as e:
            batch = make_batch_study(aro_design(16), n_chips=3, rng=1)
            batch.responses(t_years=10.0)
            assert e.n_events > 0
        stages = {r["stage"] for r in read_events(tmp_path / "ev.jsonl")}
        assert "batch.frequencies" in stages

    def test_aging_sampling_emits_progress(self, tmp_path, clock):
        from repro.core import aro_design, make_batch_study

        with telemetry.emitter_session(
            tmp_path / "ev.jsonl", min_interval_s=0.0, clock=clock
        ) as e:
            make_batch_study(aro_design(16), n_chips=3, rng=1)
            assert e.n_events > 0
        recs = read_events(tmp_path / "ev.jsonl")
        aging = [r for r in recs if r["stage"] == "aging.sample_prefactors"]
        assert aging and aging[-1]["done"] == aging[-1]["total"] == 3


class TestSessionExceptionSafety:
    """emitter_session must flush and uninstall when the body raises."""

    def test_body_exception_uninstalls_and_closes(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry.emitter_session(path) as emitter:
                emitter.lifecycle("run.start")
                raise RuntimeError("boom")
        assert telemetry.active_emitter() is None
        assert emitter.closed
        # every event written before the crash is on disk (per-write flush)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["run.start"]

    def test_slot_reusable_after_crash(self, tmp_path):
        with pytest.raises(ValueError):
            with telemetry.emitter_session(tmp_path / "a.jsonl"):
                raise ValueError
        with telemetry.emitter_session(tmp_path / "b.jsonl") as emitter:
            assert telemetry.active_emitter() is emitter
