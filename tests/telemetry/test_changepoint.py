"""Median+MAD change-point detection: warm-up, robustness, orientation."""

import math

import pytest

from repro.telemetry import (
    MAD_CONSISTENCY,
    MIN_HISTORY,
    classify,
    detect,
    metric_orientation,
)
from repro.telemetry.changepoint import DEFAULT_MIN_REL, DEFAULT_WINDOW

#: six quiet runs (~0.5 % jitter) — enough history to leave warm-up
STABLE = [100.0, 100.5, 99.5, 100.2, 99.8, 100.1]


class TestWarmup:
    def test_short_series_never_fires(self):
        # 3-run ledger: 2 prior runs < MIN_HISTORY -> warmup, no verdict
        point = detect("m", [100.0, 50.0, 200.0])
        assert point.status == "warmup"
        assert not point.moved
        assert point.median is None and point.threshold is None

    def test_warmup_boundary_is_min_history_prior_runs(self):
        series = STABLE[: MIN_HISTORY + 1]
        assert detect("m", series[:-1]).status == "warmup"
        assert detect("m", series).status != "warmup"

    def test_n_history_counts_prior_runs(self):
        point = detect("m", STABLE + [100.0])
        assert point.n_history == len(STABLE)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            detect("m", [])
        with pytest.raises(ValueError, match="window"):
            detect("m", STABLE, window=1)
        with pytest.raises(ValueError, match="min_history"):
            detect("m", STABLE, min_history=1)


class TestDetection:
    def test_quiet_series_is_stable(self):
        point = detect("m", STABLE + [100.3])
        assert point.status == "stable"
        assert not point.moved

    def test_twenty_percent_drop_fires_down(self):
        point = detect("m", STABLE + [80.0])
        assert point.status == "down"
        assert point.moved
        assert point.change == pytest.approx(-0.2, rel=0.05)

    def test_twenty_percent_rise_fires_up(self):
        point = detect("m", STABLE + [120.0])
        assert point.status == "up"
        assert point.change == pytest.approx(0.2, rel=0.05)

    def test_one_outlier_in_history_cannot_fake_a_regression(self):
        """The MAD property: a single cold-cache run in the window must
        neither widen the band enough to hide movement nor shift the
        baseline enough to flag a quiet latest value."""
        polluted = STABLE + [300.0]  # one wild outlier in history
        quiet = detect("m", polluted + [100.2])
        assert quiet.status == "stable"
        assert quiet.median == pytest.approx(100.15, abs=0.2)
        regressed = detect("m", polluted + [80.0])
        assert regressed.status == "down"

    def test_zero_mad_relative_floor(self):
        """Identical repeats give MAD == 0; the min_rel floor keeps
        microscopic drift quiet while real movement still fires."""
        flat = [100.0] * 6
        assert detect("m", flat + [100.001]).status == "stable"
        point = detect("m", flat + [110.0])
        assert point.status == "up"
        assert point.z == math.inf  # sigma 0, movement -> infinite z

    def test_threshold_is_max_of_mad_band_and_relative_floor(self):
        point = detect("m", STABLE + [100.0], z=4.0, min_rel=0.05)
        expected = max(
            4.0 * MAD_CONSISTENCY * point.mad, 0.05 * abs(point.median)
        )
        assert point.threshold == pytest.approx(expected)

    def test_flat_zero_baseline(self):
        zeros = [0.0] * 6
        assert detect("m", zeros + [0.0]).status == "stable"
        jump = detect("m", zeros + [1.0])
        assert jump.status == "up"
        assert jump.change == math.inf

    def test_window_truncates_old_history(self):
        # a huge ancient value outside the window must not affect the
        # baseline
        old = [1000.0] * 10
        recent = STABLE
        point = detect("m", old + recent + [100.0], window=len(recent))
        assert point.median == pytest.approx(100.0, abs=1.0)
        assert point.status == "stable"

    def test_defaults_are_documented_values(self):
        assert DEFAULT_WINDOW == 10
        assert DEFAULT_MIN_REL == 0.05
        assert MIN_HISTORY == 5


class TestOrientation:
    @pytest.mark.parametrize(
        "name",
        [
            "bench:chips_years_per_s",
            "bench:chips_per_s",
            "speedup_batched",
            "bench:throughput",
        ],
    )
    def test_higher_is_better(self, name):
        assert metric_orientation(name) is True

    @pytest.mark.parametrize(
        "name",
        [
            "bench:wall_s",
            "bench:min_s",
            "bench:batch.sweep.p50",
            "bench:batch.sweep.p99",
            "bench:peak_rss_bytes",
            "bench:enabled_overhead",
        ],
    )
    def test_lower_is_better(self, name):
        assert metric_orientation(name) is False

    @pytest.mark.parametrize(
        "name",
        ["e2.ro-puf.flips_at_10y_pct", "bench:rounds", "uniqueness_pct"],
    )
    def test_experiment_scalars_have_no_orientation(self, name):
        assert metric_orientation(name) is None

    @pytest.mark.parametrize(
        "name",
        ["loadgen:auth_per_s", "service.auth.rate_per_s", "requests_per_s"],
    )
    def test_service_rates_are_higher_is_better(self, name):
        """*_per_s must hit the rate rule before the *_s wall-time rule
        misreads the suffix as a duration."""
        assert metric_orientation(name) is True

    @pytest.mark.parametrize(
        "name",
        ["service.auth.p99_ms", "service.auth.p999_ms", "loadgen:auth.p50_ms"],
    )
    def test_service_latency_is_lower_is_better(self, name):
        assert metric_orientation(name) is False


class TestClassify:
    def test_warmup_and_stable_pass_through(self):
        assert classify(detect("m", [1.0, 2.0]), True) == "warmup"
        assert classify(detect("m", STABLE + [100.0]), True) == "stable"

    def test_throughput_drop_is_regress(self):
        point = detect("chips_years_per_s", STABLE + [80.0])
        assert classify(point, True) == "regress"

    def test_throughput_rise_is_improve(self):
        point = detect("chips_years_per_s", STABLE + [120.0])
        assert classify(point, True) == "improve"

    def test_wall_time_rise_is_regress(self):
        point = detect("wall_s", STABLE + [120.0])
        assert classify(point, False) == "regress"

    def test_unknown_orientation_shifts_but_never_gates(self):
        point = detect("flips_pct", STABLE + [120.0])
        assert classify(point, None) == "shift"
