"""RunLedger + LedgerEntry: appends, round-trips, and corrupt-line policy."""

import json

import pytest

from repro.telemetry import (
    LEDGER_FORMAT,
    LedgerEntry,
    RunLedger,
    RunManifest,
    package_version,
)


@pytest.fixture(scope="module")
def manifest():
    return RunManifest.collect(seed=7, config={"n_chips": 4, "n_ros": 16})


class TestLedgerEntry:
    def test_collect_carries_version_and_format(self, manifest):
        entry = LedgerEntry.collect("e2", {"a": 1.0}, manifest)
        assert entry.version == package_version()
        assert entry.format == LEDGER_FORMAT
        assert entry.manifest["seed"] == 7

    def test_collect_without_manifest_collects_one(self):
        entry = LedgerEntry.collect("e2", {"a": 1.0})
        assert entry.manifest["package"] == "repro"

    def test_scalars_cleaned(self, manifest):
        entry = LedgerEntry.collect(
            "e2",
            {
                "ok_int": 3,
                "ok_float": 1.5,
                "flag": True,
                "label": "text",
                "nan": float("nan"),
                "inf": float("inf"),
            },
            manifest,
        )
        assert entry.scalars == {"ok_int": 3.0, "ok_float": 1.5}

    def test_empty_experiment_rejected(self, manifest):
        with pytest.raises(ValueError, match="experiment id"):
            LedgerEntry.collect("", {"a": 1.0}, manifest)

    def test_dict_round_trip(self, manifest):
        entry = LedgerEntry.collect("e3", {"u": 49.7}, manifest)
        rebuilt = LedgerEntry.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        )
        assert rebuilt == entry

    def test_from_dict_rejects_malformed(self, manifest):
        good = LedgerEntry.collect("e3", {"u": 49.7}, manifest).to_dict()
        with pytest.raises(ValueError, match="JSON object"):
            LedgerEntry.from_dict(["nope"])
        for key, match in [
            ("experiment", "experiment id"),
            ("scalars", "scalars"),
            ("manifest", "manifest"),
        ]:
            bad = dict(good)
            del bad[key]
            with pytest.raises(ValueError, match=match):
                LedgerEntry.from_dict(bad)

    def test_from_dict_validates_manifest(self, manifest):
        data = LedgerEntry.collect("e3", {"u": 49.7}, manifest).to_dict()
        del data["manifest"]["seed"]
        with pytest.raises(ValueError, match="'seed'"):
            LedgerEntry.from_dict(data)


class TestRunKey:
    def test_same_provenance_same_key(self, manifest):
        a = LedgerEntry.collect("e2", {"x": 1.0}, manifest)
        b = LedgerEntry.collect("e3", {"y": 2.0}, manifest)
        assert a.run_key() == b.run_key()

    def test_seed_changes_key(self):
        cfg = {"n_chips": 4}
        a = LedgerEntry.collect("e2", {}, RunManifest.collect(seed=1, config=cfg))
        b = LedgerEntry.collect("e2", {}, RunManifest.collect(seed=2, config=cfg))
        assert a.run_key() != b.run_key()

    def test_config_changes_key(self):
        a = LedgerEntry.collect(
            "e2", {}, RunManifest.collect(seed=1, config={"n_chips": 4})
        )
        b = LedgerEntry.collect(
            "e2", {}, RunManifest.collect(seed=1, config={"n_chips": 8})
        )
        assert a.run_key() != b.run_key()

    def test_missing_git_sha_tolerated(self, manifest):
        data = LedgerEntry.collect("e2", {}, manifest).to_dict()
        data["manifest"]["git_sha"] = None
        entry = LedgerEntry.from_dict(data)
        assert entry.run_key().startswith("nogit:")


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path, manifest):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record("e2", {"flips": 31.9}, manifest)
        ledger.record("e3", {"uniq": 49.6}, manifest)
        entries = ledger.entries()
        assert [e.experiment for e in entries] == ["e2", "e3"]
        assert len(ledger) == 2
        assert [e.experiment for e in ledger] == ["e2", "e3"]

    def test_absent_file_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "missing.jsonl").entries() == []

    def test_creates_parent_dirs(self, tmp_path, manifest):
        path = tmp_path / "runs" / "ci" / "ledger.jsonl"
        RunLedger(path).record("e2", {"a": 1.0}, manifest)
        assert path.exists()

    def test_corrupt_lines_skipped_by_default(self, tmp_path, manifest):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("e2", {"a": 1.0}, manifest)
        with open(path, "a") as fh:
            fh.write('{"truncated": "by a kill -9\n')
        ledger.record("e3", {"b": 2.0}, manifest)
        assert [e.experiment for e in ledger.entries()] == ["e2", "e3"]

    def test_strict_raises_with_line_number(self, tmp_path, manifest):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("e2", {"a": 1.0}, manifest)
        with open(path, "a") as fh:
            fh.write("not json\n")
        with pytest.raises(ValueError, match=r"ledger\.jsonl:2"):
            ledger.entries(strict=True)

    def test_blank_lines_ignored(self, tmp_path, manifest):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("e2", {"a": 1.0}, manifest)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(ledger.entries()) == 1

    def test_lines_are_single_json_objects(self, tmp_path, manifest):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).record("e2", {"a": 1.0}, manifest)
        (line,) = path.read_text().splitlines()
        rec = json.loads(line)
        assert rec["experiment"] == "e2"
        assert rec["format"] == LEDGER_FORMAT
        assert isinstance(rec["version"], str) and rec["version"]
