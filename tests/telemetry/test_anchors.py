"""Anchor registry: tolerance bands, verdicts, and ledger flattening."""

import pytest

from repro.telemetry import (
    ANCHOR_EXPERIMENTS,
    Anchor,
    LedgerEntry,
    PAPER_ANCHORS,
    RunManifest,
    check_anchors,
    latest_scalars,
    render_verdicts,
    worst_status,
)


@pytest.fixture(scope="module")
def manifest():
    return RunManifest.collect(seed=3, config={"n_chips": 4})


def make_anchor(**overrides):
    kwargs = dict(
        name="test-anchor",
        metric="e2.x",
        paper_value=10.0,
        tol_pass=1.0,
        tol_fail=3.0,
    )
    kwargs.update(overrides)
    return Anchor(**kwargs)


class TestAnchorJudge:
    @pytest.mark.parametrize(
        "measured,expected",
        [
            (10.0, "pass"),
            (11.0, "pass"),  # exactly tol_pass
            (9.0, "pass"),
            (12.5, "warn"),
            (13.0, "warn"),  # exactly tol_fail
            (7.5, "warn"),
            (13.1, "fail"),
            (6.0, "fail"),
        ],
    )
    def test_bands(self, measured, expected):
        assert make_anchor().judge(measured) == expected

    def test_tolerances_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            make_anchor(tol_pass=0.0)

    def test_fail_band_contains_pass_band(self):
        with pytest.raises(ValueError, match="tol_fail"):
            make_anchor(tol_pass=3.0, tol_fail=1.0)


class TestRegistry:
    def test_abstract_values_present(self):
        by_name = {a.name: a for a in PAPER_ANCHORS}
        assert by_name["conventional-flips-10y"].paper_value == 32.0
        assert by_name["aro-flips-10y"].paper_value == 7.7
        assert by_name["aro-uniqueness"].paper_value == 49.67

    def test_metrics_are_namespaced_by_experiment(self):
        for anchor in PAPER_ANCHORS:
            assert anchor.experiment
            assert anchor.metric.startswith(anchor.experiment + ".")

    def test_anchor_experiments_cover_registry(self):
        assert set(ANCHOR_EXPERIMENTS) == {a.experiment for a in PAPER_ANCHORS}


class TestCheckAnchors:
    def test_statuses_and_missing(self):
        anchors = [
            make_anchor(name="a", metric="m.a"),
            make_anchor(name="b", metric="m.b"),
            make_anchor(name="c", metric="m.c"),
        ]
        verdicts = check_anchors({"m.a": 10.5, "m.b": 20.0}, anchors)
        assert [v.status for v in verdicts] == ["pass", "fail", "missing"]
        assert verdicts[0].deviation == pytest.approx(0.5)
        assert verdicts[2].measured is None and verdicts[2].deviation is None

    def test_worst_status_ordering(self):
        anchors = [make_anchor(name="a", metric="m.a")]
        assert worst_status(check_anchors({"m.a": 10.0}, anchors)) == "pass"
        assert worst_status(check_anchors({"m.a": 12.0}, anchors)) == "warn"
        assert worst_status(check_anchors({"m.a": 20.0}, anchors)) == "fail"

    def test_missing_ignored_unless_required(self):
        anchors = [make_anchor(name="a", metric="m.gone")]
        verdicts = check_anchors({}, anchors)
        assert worst_status(verdicts) == "pass"
        assert worst_status(verdicts, missing_is_fail=True) == "fail"

    def test_empty_is_pass(self):
        assert worst_status([]) == "pass"


class TestLatestScalars:
    def test_keys_namespaced_and_later_wins(self, manifest):
        entries = [
            LedgerEntry.collect("e2", {"flips": 30.0}, manifest),
            LedgerEntry.collect("e3", {"uniq": 49.0}, manifest),
            LedgerEntry.collect("e2", {"flips": 32.0}, manifest),
        ]
        merged = latest_scalars(entries)
        assert merged == {"e2.flips": 32.0, "e3.uniq": 49.0}

    def test_empty(self):
        assert latest_scalars([]) == {}


class TestRender:
    def test_rows_show_status_and_deviation(self):
        anchors = [
            make_anchor(name="good", metric="m.a"),
            make_anchor(name="bad", metric="m.b"),
            make_anchor(name="gone", metric="m.c"),
        ]
        text = render_verdicts(check_anchors({"m.a": 10.5, "m.b": 20.0}, anchors))
        lines = text.splitlines()
        assert lines[0].startswith("ok") and "good" in lines[0]
        assert "(+0.50 %)" in lines[0]
        assert lines[1].startswith("FAIL") and "bad" in lines[1]
        assert lines[2].startswith("----") and "--" in lines[2]

    def test_empty(self):
        assert "no anchors" in render_verdicts([])


class TestForecastRecallBands:
    """The forensics warn bands: one-sided encoding against an ideal 1.0."""

    @pytest.fixture(
        params=["conventional-forecast-recall", "aro-forecast-recall"]
    )
    def anchor(self, request):
        return {a.name: a for a in PAPER_ANCHORS}[request.param]

    def test_present_and_sourced_from_e13(self, anchor):
        assert anchor.experiment == "e13"
        assert anchor.metric.endswith(".forecast_recall")

    def test_band_edges(self, anchor):
        assert anchor.judge(1.0) == "pass"
        assert anchor.judge(0.8) == "pass"  # the gate: recall >= 0.8
        assert anchor.judge(0.79) == "warn"
        assert anchor.judge(0.65) == "warn"
        assert anchor.judge(0.64) == "fail"

    def test_e13_joins_anchor_experiments(self):
        assert "e13" in ANCHOR_EXPERIMENTS
