"""Perf ledger: entries, run keys, ingest paths, per-metric series."""

import json
import math

import pytest

from repro.telemetry import (
    Histogram,
    PERF_LEDGER_FORMAT,
    PerfEntry,
    PerfLedger,
    entry_from_bench_payload,
    entry_from_metrics_payload,
    git_sha,
    host_fingerprint,
)
from repro.telemetry.perfledger import metric_series


class TestPerfEntry:
    def test_collect_stamps_provenance(self):
        entry = PerfEntry.collect("bench_x", {"wall_s": 1.5})
        assert entry.git_sha == git_sha()
        assert entry.host == host_fingerprint()
        assert entry.created_utc
        assert entry.execution["host_fingerprint"] == entry.host
        assert entry.format == PERF_LEDGER_FORMAT

    def test_run_key_shape(self):
        entry = PerfEntry.collect("bench_x", {"wall_s": 1.0})
        sha, host, bench = entry.run_key().split(":")
        assert sha == (entry.git_sha or "nogit")[:12]
        assert host == host_fingerprint()
        assert bench == "bench_x"

    def test_run_key_without_git(self):
        entry = PerfEntry(bench="b", values={}, git_sha=None, host="")
        assert entry.run_key() == "nogit:nohost:b"

    def test_empty_bench_rejected(self):
        with pytest.raises(ValueError, match="bench"):
            PerfEntry(bench="", values={})

    def test_non_finite_scalars_dropped(self):
        entry = PerfEntry(
            bench="b",
            values={"ok": 1.0, "bad": math.nan},
            quantiles={"site.p50": math.inf},
        )
        assert entry.values == {"ok": 1.0}
        assert entry.quantiles == {}

    def test_metrics_merges_values_and_quantiles(self):
        entry = PerfEntry(
            bench="b", values={"wall_s": 2.0}, quantiles={"site.p99": 0.5}
        )
        assert entry.metrics() == {"wall_s": 2.0, "site.p99": 0.5}

    def test_round_trip(self):
        entry = PerfEntry.collect(
            "bench_x", {"wall_s": 1.5}, {"site.p50": 0.01}
        )
        clone = PerfEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="JSON object"):
            PerfEntry.from_dict(["nope"])
        with pytest.raises(ValueError, match="bench"):
            PerfEntry.from_dict({"values": {}})
        with pytest.raises(ValueError, match="values"):
            PerfEntry.from_dict({"bench": "b"})


class TestPerfLedger:
    def test_append_read_round_trip(self, tmp_path):
        ledger = PerfLedger(tmp_path / "deep" / "perf.jsonl")
        first = ledger.record("b", {"wall_s": 1.0})
        second = ledger.record("b", {"wall_s": 1.1})
        assert ledger.entries() == [first, second]
        assert len(ledger) == 2
        assert list(ledger) == [first, second]

    def test_absent_file_is_empty(self, tmp_path):
        assert PerfLedger(tmp_path / "none.jsonl").entries() == []

    def test_malformed_lines_skipped_unless_strict(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        ledger = PerfLedger(path)
        ledger.record("b", {"wall_s": 1.0})
        with open(path, "a") as fh:
            fh.write("{truncated garbag\n")
        ledger.record("b", {"wall_s": 1.2})
        entries = ledger.entries()
        assert [e.values["wall_s"] for e in entries] == [1.0, 1.2]
        with pytest.raises(ValueError, match="bad perf-ledger line"):
            ledger.entries(strict=True)


class TestBenchPayloadIngest:
    PAYLOAD = {
        "name": "bench_population",
        "values": {"new_s": 0.5, "chips_years_per_s": 5000.0},
        "memory": {"peak_rss_bytes": 1024.0 * 1024},
        "histograms": {
            "batch.sweep": {"p50": 0.01, "p99": 0.05, "mean": 0.02},
            "broken": "not-a-mapping",
        },
    }

    def test_values_memory_and_quantiles_extracted(self):
        entry = entry_from_bench_payload("bench_population", self.PAYLOAD)
        assert entry.bench == "bench_population"
        assert entry.values["new_s"] == 0.5
        assert entry.values["chips_years_per_s"] == 5000.0
        assert entry.values["peak_rss_bytes"] == 1024.0 * 1024
        # only the recorded quantile labels, never mean/count
        assert entry.quantiles == {
            "batch.sweep.p50": 0.01,
            "batch.sweep.p99": 0.05,
        }

    def test_absent_sections_cost_nothing(self):
        entry = entry_from_bench_payload("b", {"values": {"min_s": 0.1}})
        assert entry.values == {"min_s": 0.1}
        assert entry.quantiles == {}

    def test_explicit_rss_value_wins_over_memory_section(self):
        payload = {
            "values": {"peak_rss_bytes": 7.0},
            "memory": {"peak_rss_bytes": 9.0},
        }
        entry = entry_from_bench_payload("b", payload)
        assert entry.values["peak_rss_bytes"] == 7.0

    def test_service_metrics_ingested_under_prefix(self):
        """A loadgen artefact's flat RED scalars join the ledger series."""
        payload = {
            "values": {"auth_per_s": 12000.0},
            "service": {
                "metrics": {
                    "auth.p99_ms": 1.5,
                    "auth.availability": 1.0,
                    "auth.note": "not-a-number",
                },
            },
        }
        entry = entry_from_bench_payload("loadgen", payload)
        assert entry.values["auth_per_s"] == 12000.0
        assert entry.values["service.auth.p99_ms"] == 1.5
        assert entry.values["service.auth.availability"] == 1.0
        assert "service.auth.note" not in entry.values

    def test_malformed_service_section_ignored(self):
        entry = entry_from_bench_payload(
            "b", {"values": {"x": 1.0}, "service": "broken"}
        )
        assert entry.values == {"x": 1.0}


class TestMetricsPayloadIngest:
    def test_wall_rss_and_recomputed_quantiles(self):
        hist = Histogram()
        hist.observe_many([0.01, 0.02, 0.03, 0.04])
        payload = {
            "spans": [
                {"name": "a", "duration_ns": 2_000_000_000},
                {"name": "b", "duration_ns": 500_000_000},
            ],
            "peak_rss_kb": 2048,
            "histograms": {"site": hist.to_dict(), "empty": Histogram().to_dict()},
        }
        entry = entry_from_metrics_payload("e2", payload)
        assert entry.values["wall_s"] == pytest.approx(2.5)
        assert entry.values["peak_rss_bytes"] == 2048 * 1024.0
        assert entry.quantiles["site.p50"] == hist.quantile(0.50)
        assert entry.quantiles["site.p99"] == hist.quantile(0.99)
        # empty histograms produce no NaN quantiles
        assert not any(k.startswith("empty.") for k in entry.quantiles)

    def test_bad_histogram_state_skipped(self):
        payload = {
            "spans": [],
            "histograms": {"bad": {"growth": 123.0, "buckets": {}}},
        }
        entry = entry_from_metrics_payload("e2", payload)
        assert entry.quantiles == {}
        assert "wall_s" not in entry.values


class TestMetricSeries:
    def test_chronological_keyed_bench_metric(self):
        entries = [
            PerfEntry(bench="b1", values={"wall_s": v}, host="h1")
            for v in (1.0, 1.1)
        ] + [PerfEntry(bench="b2", values={"wall_s": 9.0}, host="h2")]
        series = metric_series(entries)
        assert series == {"b1:wall_s": [1.0, 1.1], "b2:wall_s": [9.0]}

    def test_host_filter_excludes_other_fingerprints(self):
        entries = [
            PerfEntry(bench="b", values={"wall_s": 1.0}, host="ci"),
            PerfEntry(bench="b", values={"wall_s": 99.0}, host="laptop"),
            PerfEntry(bench="b", values={"wall_s": 1.1}, host="ci"),
        ]
        assert metric_series(entries, host="ci") == {
            "b:wall_s": [1.0, 1.1]
        }
