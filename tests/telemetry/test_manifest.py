"""RunManifest: collection, JSON schema round-trip, validation errors."""

import json
import subprocess

import pytest

from repro import __version__
from repro.telemetry import (
    MANIFEST_SCHEMA,
    RunManifest,
    execution_fields,
    git_sha,
    host_fingerprint,
    package_version,
    platform_triple,
    validate_manifest,
)
from repro.telemetry import manifest as manifest_mod


@pytest.fixture(scope="module")
def manifest():
    return RunManifest.collect(seed=42, config={"n_chips": 4, "n_ros": 16})


class TestCollect:
    def test_captures_package_version(self, manifest):
        assert manifest.package == "repro"
        assert manifest.package_version == __version__

    def test_captures_environment(self, manifest):
        import numpy

        assert manifest.numpy_version == numpy.__version__
        assert manifest.python_version
        assert manifest.platform

    def test_seed_and_config_pass_through(self, manifest):
        assert manifest.seed == 42
        assert manifest.config == {"n_chips": 4, "n_ros": 16}

    def test_seed_optional(self):
        m = RunManifest.collect()
        assert m.seed is None

    def test_git_sha_in_this_checkout(self, manifest):
        # the test suite runs inside the repository, so a SHA must resolve
        sha = git_sha()
        assert sha is not None and len(sha) == 40
        assert manifest.git_sha == sha

    def test_git_sha_outside_checkout(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestGitShaFallback:
    """Collecting a manifest must never fail, even with no git at all."""

    def test_git_binary_absent(self, monkeypatch):
        def no_git(*args, **kwargs):
            raise OSError("No such file or directory: 'git'")

        monkeypatch.setattr(manifest_mod.subprocess, "run", no_git)
        assert git_sha() is None

    def test_git_timeout(self, monkeypatch):
        def hangs(cmd, **kwargs):
            raise subprocess.TimeoutExpired(cmd, timeout=5.0)

        monkeypatch.setattr(manifest_mod.subprocess, "run", hangs)
        assert git_sha() is None

    def test_git_empty_stdout(self, monkeypatch):
        def empty(cmd, **kwargs):
            return subprocess.CompletedProcess(cmd, 0, stdout="", stderr="")

        monkeypatch.setattr(manifest_mod.subprocess, "run", empty)
        assert git_sha() is None

    def test_collect_survives_missing_git(self, monkeypatch):
        def no_git(*args, **kwargs):
            raise OSError("no git")

        monkeypatch.setattr(manifest_mod.subprocess, "run", no_git)
        m = RunManifest.collect(seed=1)
        assert m.git_sha is None
        validate_manifest(m.to_dict())


class TestPackageVersion:
    def test_resolves_to_a_version_string(self):
        version = package_version()
        assert isinstance(version, str) and version

    def test_source_tree_fallback(self, monkeypatch):
        import importlib.metadata

        def not_installed(name):
            raise importlib.metadata.PackageNotFoundError(name)

        monkeypatch.setattr(importlib.metadata, "version", not_installed)
        assert package_version() == __version__


class TestRoundTrip:
    def test_dict_round_trip(self, manifest):
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt == manifest

    def test_json_round_trip(self, manifest):
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest

    def test_to_dict_is_json_ready(self, manifest):
        json.dumps(manifest.to_dict())  # must not raise

    def test_to_dict_matches_schema(self, manifest):
        validate_manifest(manifest.to_dict())


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_manifest(["not", "a", "dict"])

    def test_missing_field_named_in_error(self, manifest):
        data = manifest.to_dict()
        del data["seed"]
        with pytest.raises(ValueError, match="'seed'"):
            validate_manifest(data)

    def test_wrong_type_named_in_error(self, manifest):
        data = manifest.to_dict()
        data["config"] = "not-a-mapping"
        with pytest.raises(ValueError, match="'config'"):
            validate_manifest(data)

    def test_all_problems_reported_at_once(self, manifest):
        data = manifest.to_dict()
        del data["argv"]
        data["seed"] = "forty-two"
        with pytest.raises(ValueError) as err:
            validate_manifest(data)
        assert "'argv'" in str(err.value) and "'seed'" in str(err.value)

    def test_nullables_accept_null(self, manifest):
        data = manifest.to_dict()
        data["git_sha"] = None
        data["numpy_version"] = None
        data["seed"] = None
        validate_manifest(data)

    def test_schema_covers_every_required_field(self):
        assert set(MANIFEST_SCHEMA["required"]) <= set(
            MANIFEST_SCHEMA["properties"]
        )


class TestExecutionFields:
    """The optional jobs / cache fields added by the parallel-engine PR."""

    def test_default_none(self, manifest):
        assert manifest.jobs is None
        assert manifest.cache is None

    def test_collect_records_jobs_and_cache(self):
        summary = {"dir": "/tmp/c", "hits": ["e2"], "misses": []}
        m = RunManifest.collect(seed=1, jobs=4, cache=summary)
        assert m.jobs == 4
        assert m.cache == summary

    def test_jobs_outside_config(self):
        """jobs/cache must not contaminate the ledger-digested config."""
        m = RunManifest.collect(seed=1, config={"n_chips": 4}, jobs=2)
        assert "jobs" not in m.config
        assert m.to_dict()["jobs"] == 2

    def test_round_trip_preserves_execution_fields(self):
        m = RunManifest.collect(
            seed=1, jobs=2, cache={"dir": "/c", "hits": [], "misses": ["e1"]}
        )
        clone = RunManifest.from_dict(json.loads(m.to_json()))
        assert clone.jobs == 2
        assert clone.cache == m.cache

    def test_old_manifest_dict_still_loads(self, manifest):
        """Pre-PR payloads (no jobs/cache keys) remain valid."""
        data = manifest.to_dict()
        del data["jobs"]
        del data["cache"]
        validate_manifest(data)
        clone = RunManifest.from_dict(data)
        assert clone.jobs is None and clone.cache is None

    def test_schema_rejects_wrong_types(self, manifest):
        data = manifest.to_dict()
        data["jobs"] = "four"
        with pytest.raises(ValueError, match="jobs"):
            validate_manifest(data)
        data = manifest.to_dict()
        data["cache"] = ["not", "an", "object"]
        with pytest.raises(ValueError, match="cache"):
            validate_manifest(data)

    def test_execution_fields_optional_in_schema(self):
        assert "jobs" not in MANIFEST_SCHEMA["required"]
        assert "cache" not in MANIFEST_SCHEMA["required"]


class TestHostIdentity:
    """The perf ledger's host identity: triple, fingerprint, execution."""

    def test_platform_triple_shape(self):
        import platform as platform_mod
        import sys

        triple = platform_triple()
        machine, system, impl = triple.split("-")
        assert machine == platform_mod.machine()
        assert system == platform_mod.system().lower()
        assert impl.endswith(f"{sys.version_info[0]}.{sys.version_info[1]}")

    def test_fingerprint_is_stable_12_hex_digits(self):
        fp = host_fingerprint()
        assert fp == host_fingerprint()  # deterministic on one host
        assert len(fp) == 12
        int(fp, 16)  # must be hex

    def test_fingerprint_excludes_hostname(self, monkeypatch):
        """Interchangeable CI runners must share one fingerprint, so a
        hostname change alone cannot move it."""
        import platform as platform_mod

        before = host_fingerprint()
        monkeypatch.setattr(platform_mod, "node", lambda: "other-runner-42")
        assert host_fingerprint() == before

    def test_fingerprint_tracks_performance_relevant_identity(
        self, monkeypatch
    ):
        before = host_fingerprint()
        monkeypatch.setattr(
            manifest_mod, "platform_triple", lambda: "riscv64-linux-cpython9.9"
        )
        assert host_fingerprint() != before

    def test_execution_fields_contents(self):
        import os

        fields = execution_fields()
        assert set(fields) == {
            "platform_triple",
            "numpy_version",
            "cpu_count",
            "host_fingerprint",
        }
        assert fields["platform_triple"] == platform_triple()
        assert fields["cpu_count"] == os.cpu_count()
        assert fields["host_fingerprint"] == host_fingerprint()

    def test_collect_embeds_execution_block(self):
        m = RunManifest.collect(seed=1)
        assert m.execution == execution_fields()
        validate_manifest(m.to_dict())

    def test_execution_round_trips_and_old_manifests_load(self):
        m = RunManifest.collect(seed=1)
        clone = RunManifest.from_dict(json.loads(m.to_json()))
        assert clone.execution == m.execution
        data = m.to_dict()
        del data["execution"]  # pre-perf-ledger artefact
        validate_manifest(data)
        assert RunManifest.from_dict(data).execution is None

    def test_schema_rejects_wrong_type(self):
        data = RunManifest.collect(seed=1).to_dict()
        data["execution"] = "x86_64"
        with pytest.raises(ValueError, match="execution"):
            validate_manifest(data)
