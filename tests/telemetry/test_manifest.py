"""RunManifest: collection, JSON schema round-trip, validation errors."""

import json

import pytest

from repro import __version__
from repro.telemetry import (
    MANIFEST_SCHEMA,
    RunManifest,
    git_sha,
    validate_manifest,
)


@pytest.fixture(scope="module")
def manifest():
    return RunManifest.collect(seed=42, config={"n_chips": 4, "n_ros": 16})


class TestCollect:
    def test_captures_package_version(self, manifest):
        assert manifest.package == "repro"
        assert manifest.package_version == __version__

    def test_captures_environment(self, manifest):
        import numpy

        assert manifest.numpy_version == numpy.__version__
        assert manifest.python_version
        assert manifest.platform

    def test_seed_and_config_pass_through(self, manifest):
        assert manifest.seed == 42
        assert manifest.config == {"n_chips": 4, "n_ros": 16}

    def test_seed_optional(self):
        m = RunManifest.collect()
        assert m.seed is None

    def test_git_sha_in_this_checkout(self, manifest):
        # the test suite runs inside the repository, so a SHA must resolve
        sha = git_sha()
        assert sha is not None and len(sha) == 40
        assert manifest.git_sha == sha

    def test_git_sha_outside_checkout(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestRoundTrip:
    def test_dict_round_trip(self, manifest):
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt == manifest

    def test_json_round_trip(self, manifest):
        rebuilt = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert rebuilt == manifest

    def test_to_dict_is_json_ready(self, manifest):
        json.dumps(manifest.to_dict())  # must not raise

    def test_to_dict_matches_schema(self, manifest):
        validate_manifest(manifest.to_dict())


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_manifest(["not", "a", "dict"])

    def test_missing_field_named_in_error(self, manifest):
        data = manifest.to_dict()
        del data["seed"]
        with pytest.raises(ValueError, match="'seed'"):
            validate_manifest(data)

    def test_wrong_type_named_in_error(self, manifest):
        data = manifest.to_dict()
        data["config"] = "not-a-mapping"
        with pytest.raises(ValueError, match="'config'"):
            validate_manifest(data)

    def test_all_problems_reported_at_once(self, manifest):
        data = manifest.to_dict()
        del data["argv"]
        data["seed"] = "forty-two"
        with pytest.raises(ValueError) as err:
            validate_manifest(data)
        assert "'argv'" in str(err.value) and "'seed'" in str(err.value)

    def test_nullables_accept_null(self, manifest):
        data = manifest.to_dict()
        data["git_sha"] = None
        data["numpy_version"] = None
        data["seed"] = None
        validate_manifest(data)

    def test_schema_covers_every_required_field(self):
        assert set(MANIFEST_SCHEMA["required"]) <= set(
            MANIFEST_SCHEMA["properties"]
        )
