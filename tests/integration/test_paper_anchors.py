"""Statistical anchors from the paper's abstract, at reduced scale.

The full 50-chip runs live in the benchmark harness; here a 25-chip
population (seeded) must land inside generous bands around the abstract's
numbers.  These are the tests that fail if a refactor silently breaks the
physics calibration.
"""

import pytest

from repro.analysis import (
    ExperimentConfig,
    aging_bitflips,
    margin_forensics,
    uniqueness_experiment,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=25, n_ros=256, seed=20140324)


@pytest.fixture(scope="module")
def bitflips(config):
    return aging_bitflips(config, years=(5.0, 10.0))


@pytest.fixture(scope="module")
def uniq(config):
    return uniqueness_experiment(config)


class TestAgingAnchors:
    def test_conventional_ten_year_flips_near_32_percent(self, bitflips):
        assert bitflips.at_ten_years()["ro-puf"] == pytest.approx(32.0, abs=5.0)

    def test_aro_ten_year_flips_near_7_7_percent(self, bitflips):
        assert bitflips.at_ten_years()["aro-puf"] == pytest.approx(7.7, abs=2.5)

    def test_improvement_factor_at_least_3x(self, bitflips):
        final = bitflips.at_ten_years()
        assert final["ro-puf"] / final["aro-puf"] > 3.0

    def test_flips_grow_with_time(self, bitflips):
        for s in bitflips.series.values():
            assert s.y_at(5.0) < s.y_at(10.0)


class TestForecastRecallAnchor:
    """The forensics warn-band gate: the enrolment-time margin forecast
    must catch >= 80 % of the bits that actually flip by 10 years on the
    seeded reference population (50 chips x 256 ROs = 128 bits/chip)."""

    @pytest.fixture(scope="class")
    def forensics(self):
        config = ExperimentConfig(n_chips=50, n_ros=256, seed=20140324)
        return margin_forensics(config, years=(10.0,))

    def test_recall_at_least_0_8_both_designs(self, forensics):
        for name, rep in forensics.reports.items():
            assert rep.outcome.recall >= 0.8, (
                f"{name}: forecast recall {rep.outcome.recall:.3f} < 0.8"
            )

    def test_aro_forecast_is_selective(self, forensics):
        """The ARO's at-risk set must be a minority of its bits — the
        recall bar is only meaningful if the forecast doesn't flag
        everything (the conventional design's set saturates by design)."""
        aro = forensics.reports["aro-puf"]
        assert aro.forecast.at_risk_fraction < 0.5

    def test_anchor_bands_would_pass(self, forensics):
        """The same numbers, judged through the anchors registry."""
        from repro.telemetry import PAPER_ANCHORS, check_anchors

        scalars = {
            f"e13.{k}": v for k, v in forensics.ledger_scalars().items()
        }
        recall_anchors = [
            a for a in PAPER_ANCHORS if a.metric.endswith("forecast_recall")
        ]
        assert len(recall_anchors) == 2
        for verdict in check_anchors(scalars, recall_anchors):
            assert verdict.status == "pass", (
                f"{verdict.anchor.name}: {verdict.measured} -> {verdict.status}"
            )


class TestUniquenessAnchors:
    def test_conventional_hd_near_45_percent(self, uniq):
        assert uniq.reports["ro-puf"].percent() == pytest.approx(45.0, abs=2.5)

    def test_aro_hd_near_ideal(self, uniq):
        assert uniq.reports["aro-puf"].percent() == pytest.approx(49.67, abs=1.5)

    def test_aro_closer_to_ideal_than_conventional(self, uniq):
        conv_gap = abs(uniq.reports["ro-puf"].percent() - 50.0)
        aro_gap = abs(uniq.reports["aro-puf"].percent() - 50.0)
        assert aro_gap < conv_gap
