"""Failure injection: the framework must fail loudly, not silently.

Each test drives a component into an invalid regime and checks that the
error surfaces with an actionable message at the right layer.
"""

import numpy as np
import pytest

from repro.circuit import EventSimulator, Netlist, SimulationError
from repro.core import ReadoutConfig, conventional_design
from repro.ecc import BchCode, BchDecodingError
from repro.environment import OperatingConditions
from repro.keygen import FuzzyExtractor, KeyRecoveryError
from repro.transistor import ptm90


class TestReadoutOverflow:
    def test_counter_overflow_surfaces_in_noisy_evaluation(self):
        """A window too long for the counters must raise, not wrap."""
        design = conventional_design(
            n_ros=8, readout=ReadoutConfig(window_s=2e-4, counter_bits=16)
        )
        inst = design.sample_instances(1, rng=0)[0]
        with pytest.raises(ValueError, match="wraps"):
            inst.evaluate(noisy=True, rng=1)

    def test_noiseless_evaluation_unaffected(self):
        """The golden (analytic) path does not involve the counters."""
        design = conventional_design(
            n_ros=8, readout=ReadoutConfig(window_s=2e-4, counter_bits=16)
        )
        inst = design.sample_instances(1, rng=0)[0]
        assert inst.golden_response().shape == (4,)


class TestSupplyCollapse:
    def test_supply_below_threshold_raises(self):
        design = conventional_design(n_ros=8)
        inst = design.sample_instances(1, rng=0)[0]
        with pytest.raises(ValueError, match="overdrive"):
            inst.frequencies(OperatingConditions(vdd=0.2))


class TestAgedBeyondSaturation:
    def test_extreme_aging_keeps_rings_functional(self):
        """Even absurd missions leave positive overdrive (saturation cap)."""
        from repro.aging import AgingSimulator, MissionProfile
        from repro.circuit import conventional_cell

        design = conventional_design(n_ros=8)
        inst = design.sample_instances(1, rng=0)[0]
        sim = AgingSimulator(
            ptm90(),
            conventional_cell(5),
            MissionProfile(temperature_k=398.15),  # 125 C for 40 years
        )
        aged = sim.for_chip(inst.chip, rng=1).aged(40.0)
        freqs = design.instantiate(aged).frequencies()
        assert np.all(freqs > 0)


class TestDecoderBeyondCapacity:
    def test_detected_failure_propagates_to_key_recovery(self):
        from repro.ecc import ConcatenatedCode, KeyCodec, RepetitionCode

        codec = KeyCodec(
            code=ConcatenatedCode(BchCode.design(5, 1), RepetitionCode(1)),
            key_bits=16,
        )
        fx = FuzzyExtractor(codec)
        rng = np.random.default_rng(0)
        resp = rng.integers(0, 2, fx.response_bits).astype(np.uint8)
        helper, key = fx.enroll(resp, rng=1)
        correct = 0
        harmless = 0  # detected failure or wrong key: both are safe
        for seed in range(20):
            noise = (np.random.default_rng(seed).random(resp.size) < 0.4).astype(
                np.uint8
            )
            try:
                recovered = fx.reproduce(resp ^ noise, helper)
                if recovered == key:
                    correct += 1
                else:
                    harmless += 1  # silent miscorrection -> wrong key, caught
                    # downstream by any key-confirmation MAC
            except KeyRecoveryError:
                harmless += 1
        # at 40 % raw noise a t=1 code must essentially never luck into the
        # right key, and every bad outcome must be loud or wrong-key
        assert correct <= 2
        assert harmless >= 18


class TestSimulatorGuards:
    def test_unstable_settle_reports_instability(self):
        net = Netlist()
        net.add_input("en")
        # en=1 makes the NAND invert its own output: a one-gate oscillator
        net.gate("NAND2", ["en", "x"], "x", delay=1e-9)
        sim = EventSimulator(net)
        with pytest.raises(SimulationError, match="did not settle|unstable"):
            sim.settle({"en": True}, max_events=1000)

    def test_latch_loop_settles_fine(self):
        """A two-inversion loop is a latch, not an oscillator — it must
        settle without complaint."""
        net = Netlist()
        net.add_input("en")
        net.gate("NAND2", ["en", "x"], "x2", delay=1e-9)
        net.gate("INV", ["x2"], "x", delay=1e-9)
        state = EventSimulator(net).settle({"en": True})
        assert state["x"] != state["x2"]
