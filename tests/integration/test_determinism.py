"""Determinism: identical configs must regenerate identical tables.

The whole reproduction claim rests on seeded determinism — these tests
re-run representative experiments twice and require byte-identical
rendered output, and confirm that the seed (and only the seed) moves the
numbers.
"""

import pytest

from repro.analysis import ExperimentConfig, aging_bitflips, uniqueness_experiment
from repro.analysis.render import render_e2, render_e3


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=5, n_ros=32, seed=61)


class TestByteIdenticalReruns:
    def test_e2(self, config):
        a = render_e2(aging_bitflips(config, years=(1.0, 10.0)))
        b = render_e2(aging_bitflips(config, years=(1.0, 10.0)))
        assert a == b

    def test_e3(self, config):
        a = render_e3(uniqueness_experiment(config))
        b = render_e3(uniqueness_experiment(config))
        assert a == b

    def test_seed_is_the_only_knob(self, config):
        import dataclasses

        other = dataclasses.replace(config, seed=62)
        a = render_e3(uniqueness_experiment(config))
        b = render_e3(uniqueness_experiment(other))
        assert a != b


class TestCrossComponentDeterminism:
    def test_full_key_lifecycle_deterministic(self):
        """Fabricate, enrol, age, regenerate — twice — same keys, same
        helper data."""
        import numpy as np

        from repro import FuzzyExtractor, aro_design, make_study
        from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode

        def run_once():
            design = aro_design(n_ros=64)
            study = make_study(design, n_chips=2, rng=9)
            codec = KeyCodec(
                code=ConcatenatedCode(BchCode.design(5, 3), RepetitionCode(1)),
                key_bits=16,
            )
            fx = FuzzyExtractor(codec)
            outs = []
            for inst, aging in zip(study.instances, study.agings):
                resp = inst.golden_response()[: fx.response_bits]
                helper, key = fx.enroll(resp, rng=inst.chip_id)
                aged_resp = (
                    inst.with_chip(aging.aged(10.0)).golden_response()[
                        : fx.response_bits
                    ]
                )
                outs.append((helper.offset.tobytes(), key, aged_resp.tobytes()))
            return outs

        assert run_once() == run_once()

    def test_protocol_deterministic(self):
        from repro.core import conventional_design
        from repro.protocol import harvest_crps

        inst = conventional_design(n_ros=32).sample_instances(1, rng=3)[0]
        a = harvest_crps(inst, 8, rng=4)
        b = harvest_crps(inst, 8, rng=4)
        import numpy as np

        assert np.array_equal(a.challenges, b.challenges)
        assert np.array_equal(a.responses, b.responses)
