"""End-to-end observatory: --trace-out/--sample-rss sweeps, repro monitor."""

import json

import pytest

from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def observatory_run(tmp_path_factory):
    """One parallel mmap-store sweep with the full observatory on —
    exactly the shape of CI's observatory smoke step."""
    root = tmp_path_factory.mktemp("observatory")
    trace = root / "run.trace.json"
    metrics = root / "metrics.json"
    events = root / "events.jsonl"
    code = cli_main(
        [
            "run", "e2", "--chips", "6", "--ros", "16",
            "--jobs", "2", "--store", "mmap",
            "--trace-out", str(trace),
            "--sample-rss", "200",
            "--events", str(events),
            "--metrics-out", str(metrics),
        ]
    )
    assert code == 0
    return trace, metrics, events


class TestTraceOut:
    def test_trace_event_object_form(self, observatory_run):
        trace, _, _ = observatory_run
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"]

    def test_one_lane_per_worker_shard(self, observatory_run):
        trace, _, _ = observatory_run
        events = json.loads(trace.read_text())["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        worker_tids = {e["tid"] for e in slices if e["tid"] != 0}
        assert worker_tids == {1, 2}
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"coordinator", "worker-0", "worker-1"} <= lane_names

    def test_rss_counter_track_present(self, observatory_run):
        trace, _, _ = observatory_run
        events = json.loads(trace.read_text())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "rss_mb" for e in counters)


class TestMetricsPayload:
    def test_histograms_and_samples_in_payload(self, observatory_run):
        _, metrics, _ = observatory_run
        payload = json.loads(metrics.read_text())
        assert payload["format"] == 3
        # mmap-store workers report the store-path kernel latencies
        assert "store.block_s" in payload["histograms"]
        assert "store.fabricate_block_s" in payload["histograms"]
        assert payload["resource_samples"]
        sample = payload["resource_samples"][0]
        assert set(sample) >= {"t_s", "rss_bytes", "span"}

    def test_manifest_carries_histogram_summaries(self, observatory_run):
        _, metrics, _ = observatory_run
        manifest = json.loads(metrics.read_text())["manifest"]
        assert manifest["histograms"]
        assert "p99" in next(iter(manifest["histograms"].values()))


class TestMonitorCommand:
    def test_post_hoc_render(self, observatory_run, capsys):
        _, _, events = observatory_run
        assert cli_main(["monitor", "--events", str(events)]) == 0
        out = capsys.readouterr().out
        assert "run: run e2" in out
        assert "[finished]" in out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        code = cli_main(["monitor", "--events", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no events file" in capsys.readouterr().err


class TestFlagValidation:
    def test_nonpositive_sample_rate_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                ["run", "e2", "--chips", "3", "--ros", "16",
                 "--sample-rss", "0"]
            )
