"""Cross-validation: the event-driven simulator against the analytic path.

The Monte-Carlo experiments run entirely on the vectorised analytic model;
these tests drive the *same devices* through the gate-level simulator and
require agreement, including after aging — the structural ground truth for
the whole evaluation.
"""

import numpy as np
import pytest

from repro.aging import AgingSimulator, MissionProfile
from repro.circuit import (
    aro_cell,
    conventional_cell,
    measured_period,
    ring_period,
)
from repro.transistor import ptm90, transition_delay
from repro.variation import NMOS, PMOS, VariationModel


def symmetrised_stage_delays(vth, tech):
    """Per-stage mean of rise/fall delay — what one event-sim gate gets."""
    t_fall = transition_delay(vth[:, NMOS], tech)
    t_rise = transition_delay(vth[:, PMOS], tech)
    return (0.5 * (t_rise + t_fall)).tolist()


@pytest.fixture(scope="module")
def tech():
    return ptm90()


@pytest.fixture(scope="module")
def chip(tech):
    return VariationModel(tech=tech, n_ros=4, n_stages=5).sample_chip(rng=21)


class TestFreshSilicon:
    @pytest.mark.parametrize("ro", [0, 1, 2, 3])
    def test_conventional_period_agreement(self, tech, chip, ro):
        cell = conventional_cell(5)
        delays = symmetrised_stage_delays(chip.vth[ro], tech)
        structural = measured_period(cell, delays)
        analytic = 2 * (delays[0] * cell.stage0_penalty + sum(delays[1:]))
        assert structural == pytest.approx(analytic, rel=1e-9)

    def test_aro_period_agreement(self, tech, chip):
        cell = aro_cell(5)
        delays = symmetrised_stage_delays(chip.vth[0], tech)
        structural = measured_period(cell, delays)
        analytic = 2 * sum(d * 1.35 for d in delays)
        assert structural == pytest.approx(analytic, rel=1e-9)

    def test_frequency_ordering_preserved(self, tech, chip):
        """The PUF consumes only comparisons: the structural simulator must
        rank a pair of rings the same way the analytic model does."""
        cell = conventional_cell(5)
        analytic = ring_period(chip.vth, tech, stage0_penalty=cell.stage0_penalty)
        structural = [
            measured_period(cell, symmetrised_stage_delays(chip.vth[i], tech))
            for i in range(chip.n_ros)
        ]
        assert np.argsort(analytic).tolist() == np.argsort(structural).tolist()


class TestAgedSilicon:
    def test_aged_ordering_preserved(self, tech, chip):
        """Age the chip 10 years and re-check the structural agreement —
        aging only moves thresholds, so the agreement must survive."""
        cell = conventional_cell(5)
        aging = AgingSimulator(tech, cell, MissionProfile()).for_chip(chip, rng=3)
        aged = aging.aged(10.0)
        analytic = ring_period(aged.vth, tech, stage0_penalty=cell.stage0_penalty)
        structural = [
            measured_period(cell, symmetrised_stage_delays(aged.vth[i], tech))
            for i in range(aged.n_ros)
        ]
        assert np.argsort(analytic).tolist() == np.argsort(structural).tolist()

    def test_aged_rings_structurally_slower(self, tech, chip):
        cell = conventional_cell(5)
        aging = AgingSimulator(tech, cell, MissionProfile()).for_chip(chip, rng=3)
        aged = aging.aged(10.0)
        fresh_period = measured_period(
            cell, symmetrised_stage_delays(chip.vth[0], tech)
        )
        aged_period = measured_period(
            cell, symmetrised_stage_delays(aged.vth[0], tech)
        )
        assert aged_period > fresh_period
