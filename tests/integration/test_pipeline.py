"""End-to-end pipelines: fabricate -> enrol -> age -> regenerate."""

import numpy as np
import pytest

from repro import FuzzyExtractor, MissionProfile, aro_design, conventional_design, make_study
from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.keygen import KeyRecoveryError, best_design
from repro.ecc import standard_codes


def extractor_for(design, p, palette):
    """Size a key generator for the design at error rate p and build it."""
    point = best_design(
        p, design, key_bits=128, failure_target=1e-6, bch_palette=palette
    )
    return FuzzyExtractor(point.codec), point


@pytest.fixture(scope="module")
def palette():
    return standard_codes(max_m=8, max_t=20)


class TestAroKeyLifecycle:
    def test_ten_year_key_survives(self, palette):
        """The paper's bottom line, executed end to end: size the ARO key
        generator for its measured error rate, enrol fresh chips, age them
        ten years, regenerate — every key must come back."""
        extractor, point = extractor_for(aro_design(), 0.125, palette)
        design = aro_design(n_ros=point.n_ros)
        study = make_study(design, n_chips=5, rng=11)

        keys = {}
        helpers = {}
        for inst in study.instances:
            resp = inst.golden_response()[: extractor.response_bits]
            helper, key = extractor.enroll(resp, rng=inst.chip_id)
            keys[inst.chip_id] = key
            helpers[inst.chip_id] = helper

        for inst in study.aged_instances(10.0):
            resp = inst.golden_response()[: extractor.response_bits]
            key = extractor.reproduce(resp, helpers[inst.chip_id])
            assert key == keys[inst.chip_id]

    def test_keys_unique_across_chips(self, palette):
        extractor, point = extractor_for(aro_design(), 0.125, palette)
        design = aro_design(n_ros=point.n_ros)
        study = make_study(design, n_chips=5, rng=12)
        keys = set()
        for inst in study.instances:
            resp = inst.golden_response()[: extractor.response_bits]
            _, key = extractor.enroll(resp, rng=0)
            keys.add(key)
        assert len(keys) == 5


class TestConventionalKeyLifecycle:
    def test_underdesigned_ecc_loses_keys(self, palette):
        """A conventional RO-PUF paired with an ECC sized for the *ARO's*
        error rate must lose keys after ten years — the failure the paper
        motivates with."""
        extractor, point = extractor_for(aro_design(), 0.125, palette)
        design = conventional_design(n_ros=point.n_ros)
        study = make_study(design, n_chips=5, rng=13)

        helpers, keys = {}, {}
        for inst in study.instances:
            resp = inst.golden_response()[: extractor.response_bits]
            helper, key = extractor.enroll(resp, rng=inst.chip_id)
            helpers[inst.chip_id], keys[inst.chip_id] = helper, key

        losses = 0
        for inst in study.aged_instances(10.0):
            resp = inst.golden_response()[: extractor.response_bits]
            try:
                if extractor.reproduce(resp, helpers[inst.chip_id]) != keys[inst.chip_id]:
                    losses += 1
            except KeyRecoveryError:
                losses += 1
        assert losses >= 3  # most chips lose their key

    def test_properly_sized_ecc_survives(self, palette):
        """Sized for its own worst case, the conventional PUF also keeps
        its keys — at a huge area cost (asserted in the keygen tests)."""
        point = best_design(
            0.45,
            conventional_design(),
            key_bits=128,
            failure_target=1e-6,
            bch_palette=palette,
            repetitions=tuple(range(1, 640, 2)),
            max_raw_bits=5_000_000,
        )
        extractor = FuzzyExtractor(point.codec)
        design = conventional_design(n_ros=point.n_ros)
        study = make_study(design, n_chips=3, rng=14)
        for fresh, aged in zip(study.instances, study.aged_instances(10.0)):
            resp = fresh.golden_response()[: extractor.response_bits]
            helper, key = extractor.enroll(resp, rng=fresh.chip_id)
            resp_aged = aged.golden_response()[: extractor.response_bits]
            assert extractor.reproduce(resp_aged, helper) == key


class TestMissionKnobs:
    def test_hotter_mission_flips_more(self):
        design = conventional_design(n_ros=64)
        flips = []
        for temp in (298.15, 358.15):
            study = make_study(
                design,
                n_chips=6,
                mission=MissionProfile(temperature_k=temp),
                rng=15,
            )
            fresh = study.responses()
            aged = study.responses(t_years=10.0)
            flips.append(
                sum(int(np.count_nonzero(f != a)) for f, a in zip(fresh, aged))
            )
        assert flips[1] > flips[0]

    def test_aro_busier_mission_ages_more(self):
        design = aro_design(n_ros=64)
        flips = []
        for duty in (1e-7, 1e-2):
            study = make_study(
                design,
                n_chips=6,
                mission=MissionProfile(eval_duty=duty),
                rng=16,
            )
            fresh = study.responses()
            aged = study.responses(t_years=10.0)
            flips.append(
                sum(int(np.count_nonzero(f != a)) for f, a in zip(fresh, aged))
            )
        assert flips[1] > flips[0]
