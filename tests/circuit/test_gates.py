"""Gate primitives: truth tables and validation."""

import pytest

from repro.circuit import GATE_LIBRARY, Gate


def make(gate_type, n_inputs):
    return Gate(
        name="g",
        gate_type=gate_type,
        inputs=tuple(f"i{k}" for k in range(n_inputs)),
        output="o",
    )


class TestTruthTables:
    @pytest.mark.parametrize("a,expect", [(0, 1), (1, 0)])
    def test_inv(self, a, expect):
        assert make("INV", 1).evaluate([a]) == bool(expect)

    @pytest.mark.parametrize("a,expect", [(0, 0), (1, 1)])
    def test_buf(self, a, expect):
        assert make("BUF", 1).evaluate([a]) == bool(expect)

    @pytest.mark.parametrize(
        "a,b,expect", [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    )
    def test_nand2(self, a, b, expect):
        assert make("NAND2", 2).evaluate([a, b]) == bool(expect)

    @pytest.mark.parametrize(
        "a,b,expect", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)]
    )
    def test_nor2(self, a, b, expect):
        assert make("NOR2", 2).evaluate([a, b]) == bool(expect)

    @pytest.mark.parametrize(
        "a,b,expect", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    )
    def test_xor2(self, a, b, expect):
        assert make("XOR2", 2).evaluate([a, b]) == bool(expect)

    @pytest.mark.parametrize(
        "a,b,expect", [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]
    )
    def test_and2(self, a, b, expect):
        assert make("AND2", 2).evaluate([a, b]) == bool(expect)

    @pytest.mark.parametrize(
        "a,b,expect", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)]
    )
    def test_or2(self, a, b, expect):
        assert make("OR2", 2).evaluate([a, b]) == bool(expect)

    @pytest.mark.parametrize(
        "d0,d1,sel,expect",
        [(0, 1, 0, 0), (0, 1, 1, 1), (1, 0, 0, 1), (1, 0, 1, 0)],
    )
    def test_mux2_selects(self, d0, d1, sel, expect):
        assert make("MUX2", 3).evaluate([d0, d1, sel]) == bool(expect)


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown gate type"):
            make("XNOR7", 2)

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="takes 2 inputs"):
            make("NAND2", 3)

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Gate(name="g", gate_type="INV", inputs=("a",), output="o", delay=0.0)

    def test_library_covers_expected_types(self):
        assert {"INV", "NAND2", "MUX2"} <= set(GATE_LIBRARY)

    def test_tags_are_free_form(self):
        g = Gate(
            name="g",
            gate_type="INV",
            inputs=("a",),
            output="o",
            tags={"stage": 3, "role": "stage"},
        )
        assert g.tags["stage"] == 3
