"""Netlist container: construction rules and queries."""

import pytest

from repro.circuit import Netlist, NetlistError


@pytest.fixture
def net():
    n = Netlist(name="t")
    n.add_input("a")
    n.add_input("b")
    return n


class TestConstruction:
    def test_gate_convenience_names_unique(self, net):
        g1 = net.gate("INV", ["a"], "x")
        g2 = net.gate("INV", ["x"], "y")
        assert g1.name != g2.name

    def test_duplicate_gate_name_rejected(self, net):
        net.gate("INV", ["a"], "x", name="g0")
        with pytest.raises(NetlistError, match="duplicate"):
            net.gate("INV", ["b"], "y", name="g0")

    def test_multiple_drivers_rejected(self, net):
        net.gate("INV", ["a"], "x")
        with pytest.raises(NetlistError, match="driver"):
            net.gate("INV", ["b"], "x")

    def test_driving_primary_input_rejected(self, net):
        with pytest.raises(NetlistError, match="primary input"):
            net.gate("INV", ["a"], "b")

    def test_input_redeclaration_rejected(self, net):
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_input_on_driven_node_rejected(self, net):
        net.gate("INV", ["a"], "x")
        with pytest.raises(NetlistError):
            net.add_input("x")


class TestQueries:
    def test_nodes_cover_everything(self, net):
        net.gate("NAND2", ["a", "b"], "x")
        assert net.nodes == {"a", "b", "x"}

    def test_driver_of(self, net):
        g = net.gate("INV", ["a"], "x")
        assert net.driver_of("x") is g
        assert net.driver_of("a") is None

    def test_fanout_of(self, net):
        g1 = net.gate("INV", ["a"], "x")
        g2 = net.gate("NAND2", ["a", "x"], "y")
        assert net.fanout_of("a") == [g1, g2]
        assert net.fanout_of("x") == [g2]

    def test_gates_tagged(self, net):
        net.gate("INV", ["a"], "x", stage=0, role="stage")
        net.gate("INV", ["x"], "y", stage=1, role="stage")
        net.gate("INV", ["y"], "z", stage=1, role="mux")
        assert len(net.gates_tagged(role="stage")) == 2
        assert len(net.gates_tagged(stage=1, role="mux")) == 1
        assert net.gates_tagged(role="nonexistent") == []


class TestValidate:
    def test_complete_netlist_validates(self, net):
        net.gate("NAND2", ["a", "b"], "x")
        net.validate()

    def test_floating_input_detected(self, net):
        net.gate("NAND2", ["a", "ghost"], "x")
        with pytest.raises(NetlistError, match="floating"):
            net.validate()

    def test_combinational_loop_allowed(self, net):
        """Rings are loops; validate must not reject them."""
        net.gate("NAND2", ["a", "z"], "x")
        net.gate("INV", ["x"], "y")
        net.gate("INV", ["y"], "z")
        net.validate()
