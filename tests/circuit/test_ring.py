"""RO netlist builders: structure, parking, oscillation."""

import numpy as np
import pytest

from repro.circuit import (
    ENABLE,
    OSC_OUT,
    RECOVERY,
    EventSimulator,
    build_aro_cell,
    build_conventional_ro,
    stage_input_nodes,
)
from repro.circuit.ring import LAUNCH


class TestConventionalStructure:
    def test_gate_count(self):
        net = build_conventional_ro(5)
        assert len(net.gates) == 5
        assert len(net.gates_tagged(role="stage")) == 5

    def test_stage_zero_is_nand(self):
        net = build_conventional_ro(5)
        g = net.gates_tagged(stage=0)[0]
        assert g.gate_type == "NAND2"
        assert ENABLE in g.inputs

    def test_even_stage_count_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            build_conventional_ro(4)

    def test_custom_delays_applied(self):
        delays = [1e-11, 2e-11, 3e-11, 4e-11, 5e-11]
        net = build_conventional_ro(5, stage_delays=delays, nand_penalty=2.0)
        stage0 = net.gates_tagged(stage=0)[0]
        stage3 = net.gates_tagged(stage=3)[0]
        assert stage0.delay == pytest.approx(2e-11)  # 2x penalty
        assert stage3.delay == pytest.approx(4e-11)

    def test_wrong_delay_count_rejected(self):
        with pytest.raises(ValueError, match="stage delays"):
            build_conventional_ro(5, stage_delays=[1e-11] * 4)

    def test_parked_state_alternates(self):
        """en=0 latches the classic alternating pattern: every other PMOS
        (stages 2 and 4 for N=5) sits at input low, i.e. DC stressed."""
        net = build_conventional_ro(5)
        state = EventSimulator(net).settle({ENABLE: False})
        inputs = [state[node] for node in stage_input_nodes(net)]
        assert inputs == [True, True, False, True, False]

    def test_oscillates_when_enabled(self):
        net = build_conventional_ro(5)
        sim = EventSimulator(net)
        parked = sim.settle({ENABLE: False})
        result = sim.run({ENABLE: True}, t_end=5e-9, initial=parked)
        assert result.waveforms[OSC_OUT].n_toggles > 10


class TestAroStructure:
    def test_gate_count(self):
        net = build_aro_cell(5)
        assert len(net.gates) == 10  # mux + inverter per stage
        assert len(net.gates_tagged(role="mux")) == 5

    def test_stage_zero_mux_uses_launch(self):
        net = build_aro_cell(5)
        mux0 = [g for g in net.gates_tagged(role="mux") if g.tags["stage"] == 0][0]
        mux1 = [g for g in net.gates_tagged(role="mux") if g.tags["stage"] == 1][0]
        assert LAUNCH in mux0.inputs
        assert ENABLE in mux1.inputs

    def test_idle_parks_every_inverter_input_high(self):
        """The design's whole point: no PMOS gate at logic low while idle."""
        net = build_aro_cell(5)
        state = EventSimulator(net).settle(
            {ENABLE: False, LAUNCH: False, RECOVERY: True}
        )
        inputs = [state[node] for node in stage_input_nodes(net)]
        assert inputs == [True] * 5

    def test_oscillates_after_launch_sequence(self):
        net = build_aro_cell(5)
        sim = EventSimulator(net)
        parked = sim.settle({ENABLE: False, LAUNCH: False, RECOVERY: True})
        ready = sim.settle(
            {ENABLE: True, LAUNCH: False, RECOVERY: True}, initial=parked
        )
        result = sim.run(
            {ENABLE: True, LAUNCH: True, RECOVERY: True},
            t_end=5e-9,
            initial=ready,
        )
        assert result.waveforms[OSC_OUT].n_toggles > 10

    def test_mux_delay_fraction_bounds(self):
        with pytest.raises(ValueError):
            build_aro_cell(5, mux_delay_fraction=0.0)
        with pytest.raises(ValueError):
            build_aro_cell(5, mux_delay_fraction=1.0)


class TestStageInputNodes:
    def test_conventional_order(self):
        net = build_conventional_ro(5)
        nodes = stage_input_nodes(net)
        assert len(nodes) == 5
        assert nodes[0] == OSC_OUT  # NAND's feedback input

    def test_aro_points_at_mux_outputs(self):
        net = build_aro_cell(5)
        nodes = stage_input_nodes(net)
        assert nodes == [f"m{i}" for i in range(5)]

    def test_untagged_netlist_rejected(self):
        from repro.circuit import Netlist

        net = Netlist()
        net.add_input("a")
        net.gate("INV", ["a"], "b")
        with pytest.raises(ValueError, match="role='stage'"):
            stage_input_nodes(net)
