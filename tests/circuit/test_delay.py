"""Analytic ring timing: shapes, monotonicities, structural agreement."""

import numpy as np
import pytest

from repro.circuit import (
    chip_frequencies,
    conventional_cell,
    measured_period,
    ring_frequency,
    ring_period,
)
from repro.transistor import ptm90, transition_delay
from repro.variation import NMOS, PMOS, VariationModel


@pytest.fixture(scope="module")
def tech():
    return ptm90()


def uniform_vth(shape, value=0.25):
    return np.full(shape, value)


class TestRingPeriod:
    def test_scalar_ring(self, tech):
        vth = uniform_vth((5, 2))
        period = ring_period(vth, tech)
        stage = 2 * float(transition_delay(0.25, tech))
        assert period == pytest.approx(5 * stage)

    def test_batched_rings(self, tech):
        vth = uniform_vth((3, 7, 5, 2))
        period = ring_period(vth, tech)
        assert period.shape == (3, 7)
        assert np.allclose(period, period[0, 0])

    def test_stage0_penalty_weights_first_stage(self, tech):
        vth = uniform_vth((5, 2))
        base = ring_period(vth, tech)
        penalised = ring_period(vth, tech, stage0_penalty=1.5)
        stage = base / 5
        assert penalised == pytest.approx(base + 0.5 * stage)

    def test_even_stage_count_rejected(self, tech):
        with pytest.raises(ValueError, match="odd"):
            ring_period(uniform_vth((4, 2)), tech)

    def test_bad_last_axis_rejected(self, tech):
        with pytest.raises(ValueError, match="shape"):
            ring_period(uniform_vth((5, 3)), tech)

    def test_higher_pmos_vth_slows_ring(self, tech):
        vth = uniform_vth((5, 2))
        slow = vth.copy()
        slow[2, PMOS] += 0.05
        assert ring_period(slow, tech) > ring_period(vth, tech)

    def test_frequency_is_reciprocal(self, tech):
        vth = uniform_vth((5, 2))
        assert ring_frequency(vth, tech) == pytest.approx(
            1.0 / float(ring_period(vth, tech))
        )

    def test_nominal_frequency_near_one_gigahertz(self, tech):
        f = float(ring_frequency(uniform_vth((5, 2)), tech))
        assert 0.5e9 < f < 2.0e9


class TestChipFrequencies:
    def test_shape_and_spread(self, tech):
        chip = VariationModel(tech=tech, n_ros=64, n_stages=5).sample_chip(rng=0)
        f = chip_frequencies(chip, tech)
        assert f.shape == (64,)
        assert 0.002 < f.std() / f.mean() < 0.05

    def test_tc_mismatch_toggle(self, tech):
        chip = VariationModel(tech=tech, n_ros=8, n_stages=5).sample_chip(rng=0)
        with_tc = chip_frequencies(chip, tech, temperature_k=358.0)
        without = chip_frequencies(chip, tech, temperature_k=358.0, use_tc_mismatch=False)
        assert not np.allclose(with_tc, without)


class TestStructuralAgreement:
    def test_analytic_period_matches_event_simulation(self, tech):
        """The vectorised model and the gate-level simulator must agree on
        the same per-stage delays — this pins the analytic hot path to the
        structural ground truth."""
        rng = np.random.default_rng(11)
        vth = 0.25 + 0.02 * rng.standard_normal((5, 2))
        cell = conventional_cell(5)

        t_fall = transition_delay(vth[:, NMOS], tech)
        t_rise = transition_delay(vth[:, PMOS], tech)
        stage_delays = 0.5 * (t_rise + t_fall)

        analytic = float(
            ring_period(vth, tech, stage0_penalty=cell.stage0_penalty)
        )
        # the event sim uses one delay per gate (mean of rise/fall), so
        # compare against the symmetrised analytic period
        symmetric = 2 * float(
            stage_delays[0] * cell.stage0_penalty + stage_delays[1:].sum()
        )
        measured = measured_period(cell, stage_delays.tolist())
        assert measured == pytest.approx(symmetric, rel=1e-9)
        assert analytic == pytest.approx(symmetric, rel=1e-12)
