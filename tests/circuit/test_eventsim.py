"""Event-driven simulator: propagation, settling, inertial filtering."""

import pytest

from repro.circuit import EventSimulator, Netlist, SimulationError


def inverter_chain(n=3, delay=1e-9):
    net = Netlist(name="chain")
    net.add_input("in")
    prev = "in"
    for i in range(n):
        net.gate("INV", [prev], f"n{i}", delay=delay)
        prev = f"n{i}"
    return net


class TestPropagation:
    def test_chain_propagates_with_cumulative_delay(self):
        net = inverter_chain(3, delay=1e-9)
        sim = EventSimulator(net)
        result = sim.run({"in": True}, t_end=1e-6)
        assert result.settled
        # in=1 -> n0=0, n1=1, n2=0
        final = result.final_values()
        assert final["n0"] is False
        assert final["n1"] is True
        assert final["n2"] is False
        # n0 starts consistent (0) and never moves; n1 resolves its
        # inconsistent initial value after one gate delay; the would-be n2
        # glitch is narrower than the gate delay and gets filtered
        assert result.waveforms["n0"].n_toggles == 0
        assert result.waveforms["n1"].times[-1] == pytest.approx(1e-9)
        assert result.waveforms["n2"].n_toggles == 0

    def test_unbound_input_rejected(self):
        sim = EventSimulator(inverter_chain())
        with pytest.raises(SimulationError, match="unbound"):
            sim.run({}, t_end=1e-6)

    def test_initial_values_respected(self):
        net = inverter_chain(1)
        sim = EventSimulator(net)
        # consistent initial state: in=1, n0=0 -> no events at all
        result = sim.run({"in": True}, t_end=1e-6, initial={"n0": False})
        assert result.waveforms["n0"].n_toggles == 0

    def test_unknown_initial_node_rejected(self):
        sim = EventSimulator(inverter_chain())
        with pytest.raises(SimulationError, match="unknown"):
            sim.run({"in": False}, t_end=1.0, initial={"nope": True})

    def test_scheduled_input_events(self):
        net = inverter_chain(1, delay=1e-9)
        sim = EventSimulator(net)
        result = sim.run(
            {"in": False},
            t_end=1e-5,
            input_events=[(5e-9, "in", True), (8e-9, "in", False)],
        )
        wave = result.waveforms["n0"]
        # n0: starts 0 (inconsistent), resolves to 1, then toggles twice
        assert wave.values[-1] is True
        assert wave.n_toggles >= 3

    def test_input_event_on_non_input_rejected(self):
        sim = EventSimulator(inverter_chain())
        with pytest.raises(SimulationError, match="primary input"):
            sim.run({"in": False}, 1.0, input_events=[(0.5, "n0", True)])


class TestInertialFiltering:
    def test_narrow_pulse_swallowed(self):
        """A pulse shorter than the gate delay must not reach the output."""
        net = Netlist(name="pulse")
        net.add_input("in")
        net.gate("BUF", ["in"], "out", delay=10e-9)
        sim = EventSimulator(net)
        result = sim.run(
            {"in": False},
            t_end=1e-6,
            input_events=[(100e-9, "in", True), (103e-9, "in", False)],
        )
        assert result.waveforms["out"].n_toggles == 0

    def test_wide_pulse_passes(self):
        net = Netlist(name="pulse")
        net.add_input("in")
        net.gate("BUF", ["in"], "out", delay=10e-9)
        sim = EventSimulator(net)
        result = sim.run(
            {"in": False},
            t_end=1e-6,
            input_events=[(100e-9, "in", True), (130e-9, "in", False)],
        )
        assert result.waveforms["out"].n_toggles == 2


class TestOscillationAndSettle:
    def ring(self, delay=1e-9):
        net = Netlist(name="ring")
        net.add_input("en")
        net.gate("NAND2", ["en", "c"], "a", delay=delay)
        net.gate("INV", ["a"], "b", delay=delay)
        net.gate("INV", ["b"], "c", delay=delay)
        return net

    def test_disabled_ring_settles(self):
        sim = EventSimulator(self.ring())
        state = sim.settle({"en": False})
        assert state["a"] is True
        assert state["b"] is False
        assert state["c"] is True

    def test_enabled_ring_never_settles(self):
        sim = EventSimulator(self.ring())
        with pytest.raises(SimulationError):
            sim.settle({"en": True}, max_events=5000)

    def test_enabled_ring_measured_period(self):
        sim = EventSimulator(self.ring(delay=1e-9))
        parked = sim.settle({"en": False})
        result = sim.run({"en": True}, t_end=100e-9, initial=parked)
        assert not result.settled
        assert result.period("c") == pytest.approx(6e-9, rel=1e-6)

    def test_period_needs_enough_edges(self):
        sim = EventSimulator(self.ring(delay=1e-9))
        parked = sim.settle({"en": False})
        result = sim.run({"en": True}, t_end=8e-9, initial=parked)
        with pytest.raises(SimulationError, match="rising edges"):
            result.period("c", n_cycles=10)

    def test_max_events_guard(self):
        sim = EventSimulator(self.ring())
        with pytest.raises(SimulationError, match="events"):
            sim.run({"en": True}, t_end=1.0, max_events=1000)


class TestWaveform:
    def test_value_at_interpolates_step(self):
        net = inverter_chain(1, delay=1e-9)
        sim = EventSimulator(net)
        result = sim.run({"in": True}, t_end=1e-6)
        wave = result.waveforms["n0"]
        assert wave.value_at(0.0) is False
        assert wave.value_at(2e-9) is False

    def test_edges_filtering(self):
        net = inverter_chain(1, delay=1e-9)
        sim = EventSimulator(net)
        result = sim.run(
            {"in": True},
            t_end=1e-5,
            input_events=[(10e-9, "in", False)],
        )
        rising = result.waveforms["n0"].edges(rising=True)
        falling = result.waveforms["n0"].edges(rising=False)
        assert len(rising) == 1
        assert len(falling) == 0  # initial 0 assignment is not an edge
