"""VCD waveform export."""

import pytest

from repro.circuit import ENABLE, EventSimulator, build_conventional_ro
from repro.circuit.vcd import _identifier, _parse_timescale, dump_vcd


@pytest.fixture(scope="module")
def result():
    net = build_conventional_ro(5)
    sim = EventSimulator(net)
    parked = sim.settle({ENABLE: False})
    return sim.run({ENABLE: True}, t_end=2e-9, initial=parked)


class TestDump:
    def test_header_and_vars(self, result, tmp_path):
        path = dump_vcd(result, tmp_path / "ro.vcd")
        text = path.read_text()
        assert "$timescale 1ps $end" in text
        assert "$enddefinitions $end" in text
        assert "$var wire 1" in text
        assert " osc " in text

    def test_oscillation_recorded(self, result, tmp_path):
        path = dump_vcd(result, tmp_path / "ro.vcd", nodes=["osc"])
        text = path.read_text()
        # many timestamped toggles of the single dumped signal
        assert text.count("\n#") > 10
        assert "1!" in text and "0!" in text

    def test_time_quantisation(self, result, tmp_path):
        """With 1 ps resolution the 106 ps half-period lands on #106-ish
        ticks; every timestamp must be a non-negative integer."""
        path = dump_vcd(result, tmp_path / "ro.vcd", nodes=["osc"])
        ticks = [
            int(line[1:])
            for line in path.read_text().splitlines()
            if line.startswith("#")
        ]
        assert ticks == sorted(ticks)
        assert all(t >= 0 for t in ticks)

    def test_unknown_node_rejected(self, result, tmp_path):
        with pytest.raises(KeyError, match="nope"):
            dump_vcd(result, tmp_path / "x.vcd", nodes=["nope"])

    def test_empty_selection_rejected(self, result, tmp_path):
        with pytest.raises(ValueError):
            dump_vcd(result, tmp_path / "x.vcd", nodes=[])


class TestHelpers:
    def test_identifier_uniqueness(self):
        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500

    def test_identifier_validation(self):
        with pytest.raises(ValueError):
            _identifier(-1)

    @pytest.mark.parametrize(
        "text,expected",
        [("1ps", 1e-12), ("10ns", 1e-8), ("100us", 1e-4), ("1s", 1.0)],
    )
    def test_parse_timescale(self, text, expected):
        assert _parse_timescale(text) == pytest.approx(expected)

    def test_parse_timescale_rejects_garbage(self):
        with pytest.raises(ValueError):
            _parse_timescale("2ns")
        with pytest.raises(ValueError):
            _parse_timescale("1parsec")
