"""Cell descriptors: stress patterns, areas, measured periods."""

import numpy as np
import pytest

from repro.circuit import (
    CellKind,
    aro_cell,
    cell_for,
    conventional_cell,
    measured_period,
)
from repro.transistor import ptm90
from repro.variation import NMOS, PMOS


class TestFactory:
    def test_cell_for_dispatch(self):
        assert cell_for(CellKind.CONVENTIONAL).kind is CellKind.CONVENTIONAL
        assert cell_for(CellKind.ARO).kind is CellKind.ARO

    def test_stage_count_propagates(self):
        assert conventional_cell(7).n_stages == 7
        assert aro_cell(9).build().gates_tagged(role="stage")[0] is not None


class TestIdleStressPattern:
    def test_conventional_stresses_alternating_pmos(self):
        pattern = conventional_cell(5).idle_stress_pattern()
        assert pattern[:, PMOS].tolist() == [0.0, 0.0, 1.0, 0.0, 1.0]
        # the complementary stages park their NMOS at gate high (PBTI)
        assert pattern[:, NMOS].tolist() == [1.0, 1.0, 0.0, 1.0, 0.0]

    def test_conventional_seven_stages(self):
        pattern = conventional_cell(7).idle_stress_pattern()
        assert pattern[:, PMOS].sum() == 3.0  # (N-1)/2 stressed PMOS

    def test_aro_stresses_no_pmos(self):
        pattern = aro_cell(5).idle_stress_pattern()
        assert not pattern[:, PMOS].any()
        assert pattern[:, NMOS].all()  # all inputs parked high

    def test_every_stage_parks_exactly_one_polarity(self):
        for cell in (conventional_cell(5), aro_cell(5)):
            pattern = cell.idle_stress_pattern()
            assert np.array_equal(
                pattern[:, NMOS] + pattern[:, PMOS], np.ones(5)
            )


class TestArea:
    def test_aro_cell_is_larger(self):
        tech = ptm90()
        assert aro_cell(5).cell_area(tech) > conventional_cell(5).cell_area(tech)

    def test_area_scales_with_stages(self):
        tech = ptm90()
        assert conventional_cell(7).cell_area(tech) > conventional_cell(5).cell_area(tech)

    def test_conventional_area_formula(self):
        tech = ptm90()
        expected = tech.area.nand2 + 4 * tech.area.inverter
        assert conventional_cell(5).cell_area(tech) == pytest.approx(expected)


class TestMeasuredPeriod:
    def test_conventional_matches_analytic(self):
        d = 2e-11
        cell = conventional_cell(5)
        expected = 2 * (cell.stage0_penalty * d + 4 * d)
        assert measured_period(cell, [d] * 5) == pytest.approx(expected, rel=1e-6)

    def test_aro_matches_analytic(self):
        d = 2e-11
        period = measured_period(aro_cell(5), [d] * 5)
        assert period == pytest.approx(2 * 5 * d * 1.35, rel=1e-6)

    def test_mismatched_delays(self):
        rng = np.random.default_rng(3)
        delays = (2e-11 * (1 + 0.08 * rng.standard_normal(5))).tolist()
        cell = conventional_cell(5)
        expected = 2 * (delays[0] * cell.stage0_penalty + sum(delays[1:]))
        assert measured_period(cell, delays) == pytest.approx(expected, rel=1e-6)

    def test_longer_ring_slower(self):
        assert measured_period(conventional_cell(7)) > measured_period(
            conventional_cell(5)
        )
