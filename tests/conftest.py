"""Shared fixtures: small-but-meaningful populations for fast tests.

Statistical assertions in this suite use deliberately wide bands; the
paper-scale runs live in ``benchmarks/`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import aro_design, conventional_design, make_study
from repro.transistor import ptm90


@pytest.fixture(scope="session")
def tech():
    return ptm90()


@pytest.fixture(scope="session")
def small_conventional():
    """Conventional design small enough for per-test fabrication."""
    return conventional_design(n_ros=32)


@pytest.fixture(scope="session")
def small_aro():
    return aro_design(n_ros=32)


@pytest.fixture(scope="session")
def conventional_study(small_conventional):
    """A fabricated 8-chip conventional population (session-cached)."""
    return make_study(small_conventional, n_chips=8, rng=123)


@pytest.fixture(scope="session")
def aro_study(small_aro):
    return make_study(small_aro, n_chips=8, rng=123)


@pytest.fixture
def rng():
    return np.random.default_rng(2014)
