"""The fused single-pass kernel: bit-identity in every configuration.

The refactor's contract — one chip-axis-blocked streaming pass replaces
the separate full-tensor compute/compare/bin passes — is only admissible
because it changes **no bytes**.  These tests pin that claim along every
axis the engines expose: block size (including 1, a prime, and the whole
population at once), populations the block size does not divide,
temperature and supply corners, the single-mechanism counterfactuals,
margins and histogram counts, and the serial / parallel / out-of-core
engines against one another.  The dtype tier's weaker contract
(response-*bit* identity, proven per scale by the validation harness) is
pinned at the paper's anchor scale.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core import aro_design, compare_pairs, conventional_design
from repro.core.population import make_batch_study
from repro.environment import OperatingConditions, celsius
from repro.kernel import (
    DtypeValidationReport,
    OVERDRIVE_ERROR,
    validate_response_identity,
)
from repro.metrics.margins import (
    histogram_edges,
    margin_histogram,
    relative_margins,
)

SEED = 1234
N_CHIPS = 13  # prime: no candidate block size divides it
N_ROS = 32

CORNERS = [
    OperatingConditions.nominal(),
    OperatingConditions(temperature_k=celsius(85.0)),
    OperatingConditions(temperature_k=celsius(-20.0), vdd=1.1),
]


@pytest.fixture(scope="module")
def reference():
    """One whole-population-per-block study: the unblocked baseline."""
    design = aro_design(n_ros=N_ROS)
    return design, make_batch_study(
        design, N_CHIPS, rng=SEED, block_size=N_CHIPS
    )


class TestBlockIdentity:
    @pytest.mark.parametrize("block_size", [1, 7, 64, N_CHIPS])
    def test_frequencies_any_block_size(self, reference, block_size):
        design, base = reference
        blocked = make_batch_study(
            design, N_CHIPS, rng=SEED, block_size=block_size
        )
        for cond in CORNERS:
            for t in (0.0, 10.0):
                assert np.array_equal(
                    base.frequencies(t, cond), blocked.frequencies(t, cond)
                )

    @pytest.mark.parametrize("block_size", [1, 7, 64, N_CHIPS])
    def test_responses_any_block_size(self, reference, block_size):
        design, base = reference
        blocked = make_batch_study(
            design, N_CHIPS, rng=SEED, block_size=block_size
        )
        for cond in CORNERS:
            for t in (0.0, 10.0):
                assert np.array_equal(
                    base.responses(t_years=t, conditions=cond),
                    blocked.responses(t_years=t, conditions=cond),
                )

    @pytest.mark.parametrize("block_size", [1, 7])
    def test_histogram_any_block_size(self, reference, block_size):
        design, base = reference
        blocked = make_batch_study(
            design, N_CHIPS, rng=SEED, block_size=block_size
        )
        edges = histogram_edges(0.02, 32)
        for t in (0.0, 10.0):
            assert np.array_equal(
                base.margin_histogram(edges, t_years=t),
                blocked.margin_histogram(edges, t_years=t),
            )

    @pytest.mark.parametrize("mechanism", ["bti", "hci"])
    @pytest.mark.parametrize("block_size", [1, 7, N_CHIPS])
    def test_mechanism_any_block_size(self, reference, block_size, mechanism):
        design, base = reference
        blocked = make_batch_study(
            design, N_CHIPS, rng=SEED, block_size=block_size
        )
        assert np.array_equal(
            base.mechanism_frequencies(10.0, mechanism),
            blocked.mechanism_frequencies(10.0, mechanism),
        )


class TestSinkFusion:
    """Derived quantities from the streaming pass == full-tensor re-read."""

    def test_fused_bits_equal_full_tensor_compare(self):
        design = conventional_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED, block_size=7)
        pairs = design.pairing.pairs(design.n_ros, None)
        for t in (0.0, 10.0):
            bits = batch.responses(t_years=t)  # miss: filled by the sink
            freqs = batch.frequencies(t)  # hit: the sink's own tensor
            assert np.array_equal(
                bits,
                compare_pairs(freqs, pairs, design.tech, design.readout),
            )

    def test_fused_histogram_equals_full_tensor_binning(self):
        design = aro_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED, block_size=7)
        pairs = design.pairing.pairs(design.n_ros, None)
        edges = histogram_edges(0.02, 32)
        counts = batch.margin_histogram(edges, t_years=10.0)  # miss: sink
        freqs = batch.frequencies(10.0)
        assert np.array_equal(
            counts, margin_histogram(relative_margins(freqs, pairs), edges)
        )

    def test_fused_pass_counter(self):
        design = aro_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED)
        with telemetry.session() as tracer:
            batch.responses(t_years=10.0)  # memo miss -> one fused pass
            batch.responses(t_years=10.0)  # memo hit -> no pass at all
        assert tracer.counters.get("batch.fused_passes") == 1

    def test_overdrive_error_from_blocked_pass(self):
        design = aro_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED, block_size=7)
        starved = OperatingConditions(vdd=0.05)
        with pytest.raises(ValueError, match="non-positive gate overdrive"):
            batch.frequencies(0.0, starved)


class TestEngineIdentity:
    """Serial, parallel and out-of-core engines agree bit-for-bit."""

    def test_serial_vs_parallel_vs_store(self):
        from repro.parallel import make_parallel_study
        from repro.store import make_store_study

        design = aro_design(n_ros=N_ROS)
        serial = make_batch_study(design, N_CHIPS, rng=SEED)
        with make_parallel_study(
            design, N_CHIPS, rng=SEED, jobs=2
        ) as parallel, make_store_study(
            design, N_CHIPS, rng=SEED, block_size=5
        ) as store:
            for t in (0.0, 10.0):
                bits = serial.responses(t_years=t)
                assert np.array_equal(bits, parallel.responses(t_years=t))
                assert np.array_equal(bits, store.responses(t_years=t))
                freqs = serial.frequencies(t)
                assert np.array_equal(freqs, np.asarray(store.frequencies(t)))


class TestDtypeTier:
    def test_float32_bits_identical_at_anchor_scale(self):
        """The harness proves bit identity at 50 chips x 256 ROs under
        the anchor seed — the precondition for ``--dtype float32``
        gating anything.  The seed matters: a population *can* hold a
        bit marginal enough for float32 rounding to flip it (seed 1234
        does at this scale), which is precisely why the harness runs per
        configuration instead of once."""
        from repro.analysis.experiments import ExperimentConfig

        anchor_seed = ExperimentConfig().seed
        for factory in (aro_design, conventional_design):
            report = validate_response_identity(
                factory(), 50, seed=anchor_seed, conditions=CORNERS
            )
            assert isinstance(report, DtypeValidationReport)
            assert report.ok, report.summary()
            assert report.total_bits == 50 * 128 * 3 * len(CORNERS)
            assert report.failing_corners == []
            assert 0.0 < report.max_freq_rel_err < 1e-5

    def test_float32_frequencies_are_float32(self):
        batch = make_batch_study(
            aro_design(n_ros=N_ROS), N_CHIPS, rng=SEED, dtype="float32"
        )
        assert batch.frequencies(10.0).dtype == np.float32

    def test_report_counts_mismatches(self):
        report = DtypeValidationReport(
            reference_dtype="float64",
            candidate_dtype="float32",
            n_chips=4,
            n_bits=16,
            corners=2,
            total_bits=128,
            mismatched_bits=3,
            max_freq_rel_err=1e-6,
            failing_corners=[(10.0, 300.0, None)],
        )
        assert not report.ok
        assert "MISMATCH" in report.summary()

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            make_batch_study(
                aro_design(n_ros=N_ROS), N_CHIPS, rng=SEED, dtype="float16"
            )

    def test_mmap_store_rejects_float32(self):
        from repro.analysis.experiments import ExperimentConfig
        from repro.parallel import make_parallel_study

        with pytest.raises(ValueError, match="float64"):
            make_parallel_study(
                aro_design(n_ros=N_ROS),
                N_CHIPS,
                rng=SEED,
                jobs=2,
                store="mmap",
                dtype="float32",
            )
        with pytest.raises(ValueError, match="float64"):
            ExperimentConfig(store="mmap", dtype="float32")

    def test_parallel_float32_matches_serial_float32(self):
        from repro.parallel import make_parallel_study

        design = aro_design(n_ros=N_ROS)
        serial = make_batch_study(design, N_CHIPS, rng=SEED, dtype="float32")
        with make_parallel_study(
            design, N_CHIPS, rng=SEED, jobs=2, dtype="float32"
        ) as parallel:
            for t in (0.0, 10.0):
                assert np.array_equal(
                    serial.responses(t_years=t),
                    parallel.responses(t_years=t),
                )
                assert np.array_equal(
                    serial.frequencies(t), parallel.frequencies(t)
                )


class TestDeltaComponents:
    """The forensics mechanism split reuses the component kernels."""

    def test_components_sum_to_delta(self):
        design = aro_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED)
        bti, hci = batch.aging.delta_components(10.0)
        assert np.array_equal(bti + hci, batch.aging.delta(10.0))

    def test_delta_component_out_reuse(self):
        design = aro_design(n_ros=N_ROS)
        batch = make_batch_study(design, N_CHIPS, rng=SEED)
        fresh = batch.aging.delta_component(10.0, "bti")
        buf = np.empty_like(fresh)
        reused = batch.aging.delta_component(10.0, "bti", out=buf)
        assert reused is buf
        assert np.array_equal(reused, fresh)
