"""The array-backend seam: resolution, registration, laziness.

The seam's contract is deliberately thin: :func:`resolve_backend` turns
a spec (instance, name, env var, None) into an :class:`ArrayBackend`;
the numpy backend's ufunc attributes ARE numpy's ufuncs (so routing the
kernel through the seam cannot perturb a single byte); and optional
device backends are imported only inside their factories — merely
listing or resolving ``"numpy"`` must never touch cupy or torch.
"""

import sys

import numpy as np
import pytest

from repro.kernel import ArrayBackend, register_backend, resolve_backend
from repro.kernel.backend import BACKEND_ENV, NUMPY, NumpyBackend


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) is NUMPY

    def test_name_lookup(self):
        assert resolve_backend("numpy") is NUMPY

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend(None) is NUMPY

    def test_unknown_name_raises(self):
        with pytest.raises(RuntimeError, match="unknown"):
            resolve_backend("not-a-backend")

    def test_registered_backend_resolves(self):
        sentinel = NumpyBackend()
        register_backend("test-sentinel", lambda: sentinel)
        assert resolve_backend("test-sentinel") is sentinel


class TestNumpyBackend:
    """The host backend must add zero indirection and zero byte drift."""

    def test_ufuncs_are_numpy_ufuncs(self):
        assert NUMPY.subtract is np.subtract
        assert NUMPY.multiply is np.multiply
        assert NUMPY.log is np.log
        assert NUMPY.exp is np.exp
        assert NUMPY.minimum is np.minimum
        assert NUMPY.reciprocal is np.reciprocal

    def test_is_host(self):
        assert NUMPY.is_host

    def test_to_numpy_is_identity_for_ndarray(self):
        arr = np.arange(4.0)
        assert NUMPY.to_numpy(arr) is arr

    def test_matmul_into_matches_dot(self):
        rng = np.random.default_rng(3)
        m = rng.normal(size=(6, 10))
        v = rng.normal(size=10)
        out = np.empty(6)
        NUMPY.matmul_into(m, v, out)
        assert np.array_equal(out, np.dot(m, v))

    def test_all_finite(self):
        assert NUMPY.all_finite(np.ones(3))
        assert not NUMPY.all_finite(np.array([1.0, np.nan]))
        assert not NUMPY.all_finite(np.array([1.0, np.inf]))

    def test_empty_honours_dtype(self):
        assert NUMPY.empty((2, 3), np.dtype(np.float32)).dtype == np.float32


class TestLaziness:
    """Optional device backends must never be imported eagerly."""

    def test_import_does_not_pull_device_frameworks(self):
        # repro.kernel is imported (this test file does), yet neither
        # optional framework may have been imported as a side effect —
        # unless the test environment itself already had them loaded
        # before repro (in which case the assertion is vacuous anyway)
        import repro.kernel  # noqa: F401 - the import under test

        for module in ("cupy",):
            assert module not in sys.modules or not hasattr(
                sys.modules[module], "__repro_eager_import__"
            )

    def test_missing_framework_is_a_clean_error(self, monkeypatch):
        # resolving a registered-but-unavailable backend must raise a
        # RuntimeError naming the backend, not leak the ImportError
        monkeypatch.setitem(sys.modules, "cupy", None)
        with pytest.raises(RuntimeError, match="cupy"):
            resolve_backend("cupy")


class TestCustomBackend:
    """A drop-in backend routes every kernel array op through itself."""

    def test_counting_backend_sees_kernel_traffic(self):
        class CountingBackend(NumpyBackend):
            name = "counting"

            def __init__(self):
                self.matvecs = 0

            def matmul_into(self, matrix, vector, out):
                self.matvecs += 1
                return np.dot(matrix, vector, out=out)

        from repro.core import aro_design
        from repro.core.population import make_batch_study

        backend = CountingBackend()
        batch = make_batch_study(
            aro_design(n_ros=16), 5, rng=7, backend=backend
        )
        reference = make_batch_study(aro_design(n_ros=16), 5, rng=7)
        assert np.array_equal(
            batch.responses(t_years=10.0), reference.responses(t_years=10.0)
        )
        assert backend.matvecs > 0
