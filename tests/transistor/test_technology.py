"""Technology cards: registry, immutability, derived quantities."""

import dataclasses

import pytest

from repro.transistor import (
    AreaTable,
    TechnologyCard,
    get_technology,
    ptm45,
    ptm90,
    register,
)


class TestRegistry:
    def test_ptm90_registered(self):
        assert get_technology("ptm90").name == "ptm90"

    def test_ptm45_registered(self):
        assert get_technology("ptm45").name == "ptm45"

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="ptm90"):
            get_technology("ptm180")

    def test_register_adds_lookup(self):
        card = ptm90().replace(name="custom-node")
        register(card)
        assert get_technology("custom-node") is card


class TestCard:
    def test_cards_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ptm90().vdd = 0.9

    def test_replace_returns_new_card(self):
        base = ptm90()
        low_v = base.replace(vdd=1.0)
        assert low_v.vdd == 1.0
        assert base.vdd == 1.2

    def test_gate_overdrive(self):
        card = ptm90()
        assert card.gate_overdrive == pytest.approx(card.vdd - card.vth_n)

    def test_45nm_is_scaled_down(self):
        big, small = ptm90(), ptm45()
        assert small.vdd < big.vdd
        assert small.area.inverter < big.area.inverter
        assert small.variation.sigma_intra_die > big.variation.sigma_intra_die

    def test_default_thresholds_leave_overdrive(self):
        for card in (ptm90(), ptm45()):
            assert card.vdd - card.vth_n > 0.5
            assert card.vdd - card.vth_p > 0.5


class TestAreaTable:
    def test_scaled_scales_every_entry(self):
        base = AreaTable()
        half = base.scaled(0.5)
        for f in dataclasses.fields(AreaTable):
            assert getattr(half, f.name) == pytest.approx(
                0.5 * getattr(base, f.name)
            )

    def test_flip_flop_bigger_than_inverter(self):
        area = AreaTable()
        assert area.dff > area.inverter
        assert area.counter_bit > area.dff


class TestCalibration:
    """The frozen constants must keep their documented relationships."""

    def test_systematic_is_about_half_of_intra_die(self):
        var = ptm90().variation
        assert 0.3 < var.sigma_systematic / var.sigma_intra_die < 0.7

    def test_nbti_exponent_is_reaction_diffusion(self):
        assert ptm90().nbti.n == pytest.approx(1.0 / 6.0)

    def test_bti_saturation_leaves_overdrive(self):
        card = ptm90()
        worst_vth = card.vth_p + card.nbti.max_shift + 5 * card.variation.sigma_intra_die
        assert card.vdd - worst_vth > 0.1
