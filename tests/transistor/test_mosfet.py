"""Alpha-power-law device model: monotonicities and scaling laws."""

import numpy as np
import pytest

from repro.transistor import (
    T_REF_K,
    delay_sensitivity,
    drive_current,
    mobility_factor,
    ptm90,
    transition_delay,
    vth_at_temperature,
)


@pytest.fixture(scope="module")
def tech():
    return ptm90()


class TestVthTemperature:
    def test_reference_temperature_is_identity(self, tech):
        assert vth_at_temperature(0.25, T_REF_K, tech) == pytest.approx(0.25)

    def test_vth_drops_with_temperature(self, tech):
        hot = vth_at_temperature(0.25, T_REF_K + 60, tech)
        assert hot < 0.25

    def test_tc_scale_modulates_shift(self, tech):
        nominal = vth_at_temperature(0.25, T_REF_K + 60, tech)
        strong = vth_at_temperature(0.25, T_REF_K + 60, tech, tc_scale=2.0)
        assert (0.25 - strong) == pytest.approx(2.0 * (0.25 - nominal))

    def test_vectorised(self, tech):
        vth = np.full((3, 4), 0.25)
        out = vth_at_temperature(vth, T_REF_K + 10, tech)
        assert out.shape == (3, 4)
        assert np.all(out < 0.25)


class TestMobility:
    def test_unity_at_reference(self, tech):
        assert mobility_factor(T_REF_K, tech) == pytest.approx(1.0)

    def test_degrades_when_hot(self, tech):
        assert mobility_factor(T_REF_K + 60, tech) < 1.0

    def test_improves_when_cold(self, tech):
        assert mobility_factor(T_REF_K - 40, tech) > 1.0

    def test_rejects_nonpositive_temperature(self, tech):
        with pytest.raises(ValueError):
            mobility_factor(0.0, tech)


class TestDriveCurrent:
    def test_higher_vth_less_current(self, tech):
        assert drive_current(0.30, tech) < drive_current(0.20, tech)

    def test_alpha_power_scaling(self, tech):
        """Doubling overdrive multiplies current by 2**alpha."""
        v1 = tech.vdd - 0.2
        v2 = tech.vdd - 0.4
        i_small = drive_current(v2, tech)  # overdrive 0.4
        i_large = drive_current(v1, tech)  # overdrive 0.2
        assert i_small / i_large == pytest.approx(2**tech.alpha)

    def test_zero_overdrive_raises(self, tech):
        with pytest.raises(ValueError, match="overdrive"):
            drive_current(tech.vdd, tech)

    def test_supply_override(self, tech):
        assert drive_current(0.25, tech, vdd=1.0) < drive_current(0.25, tech)


class TestTransitionDelay:
    def test_delay_in_picosecond_range(self, tech):
        t = transition_delay(tech.vth_n, tech)
        assert 1e-12 < float(t) < 1e-9

    def test_slower_when_hot(self, tech):
        """Mobility loss dominates the Vth drop at these parameters."""
        cold = transition_delay(0.25, tech, temperature_k=T_REF_K)
        hot = transition_delay(0.25, tech, temperature_k=T_REF_K + 60)
        assert hot > cold

    def test_slower_at_low_supply(self, tech):
        assert transition_delay(0.25, tech, vdd=1.05) > transition_delay(0.25, tech)

    def test_higher_vth_slower(self, tech):
        assert transition_delay(0.30, tech) > transition_delay(0.20, tech)

    def test_custom_load(self, tech):
        base = transition_delay(0.25, tech)
        heavy = transition_delay(0.25, tech, c_load=2 * tech.c_load)
        assert heavy == pytest.approx(2 * float(base))


class TestSensitivity:
    def test_first_order_sensitivity_predicts_delay_shift(self, tech):
        """d(ln t)/dVth from the analytic formula matches a finite diff."""
        sens = delay_sensitivity(tech)
        dv = 1e-4
        t0 = float(transition_delay(tech.vth_n, tech))
        t1 = float(transition_delay(tech.vth_n + dv, tech))
        measured = (t1 - t0) / (t0 * dv)
        assert measured == pytest.approx(sens, rel=1e-3)
