"""The RNG spawning contract: stability, independence, consumption.

``spawn_keys`` is the reproducibility bedrock of the parallel engine —
the coordinator ships these keys to worker processes and promises the
workers fabricate exactly the silicon a serial run would.  These tests
pin the documented guarantees so any accidental change to the derivation
fails loudly instead of silently invalidating every recorded seed.
"""

import numpy as np
import pytest

from repro._rng import DEFAULT_SEED, as_generator, spawn, spawn_keys


class TestSpawnKeys:
    def test_stable_across_calls(self):
        """Same parent state + same n -> the same key list, always."""
        assert spawn_keys(123, 16) == spawn_keys(123, 16)
        assert spawn_keys(None, 4) == spawn_keys(DEFAULT_SEED, 4)

    def test_plain_ints_in_range(self):
        keys = spawn_keys(7, 64)
        assert all(type(k) is int for k in keys)
        assert all(0 <= k < 2**63 - 1 for k in keys)

    def test_spawn_matches_keys(self):
        """spawn(rng, n)[i] is stream-identical to default_rng(keys[i])."""
        keys = spawn_keys(99, 8)
        children = spawn(99, 8)
        for key, child in zip(keys, children):
            expected = np.random.default_rng(key).random(32)
            assert np.array_equal(child.random(32), expected)

    def test_parent_consumed_exactly_one_draw(self):
        """The parent advances by one size-n integers draw, no more."""
        a = as_generator(5)
        spawn_keys(a, 10)
        b = as_generator(5)
        b.integers(0, 2**63 - 1, size=10, dtype=np.int64)
        assert np.array_equal(a.random(16), b.random(16))

    def test_successive_calls_disjoint(self):
        """Two calls on one live parent give two unrelated key lists."""
        gen = as_generator(42)
        first = spawn_keys(gen, 20)
        second = spawn_keys(gen, 20)
        assert not set(first) & set(second)

    def test_independence_of_child_streams(self):
        """Child streams are statistically unrelated (no pairwise
        correlation among a population's fabrication draws)."""
        children = spawn(2024, 32)
        draws = np.array([c.random(256) for c in children])
        corr = np.corrcoef(draws)
        off_diag = corr[~np.eye(len(children), dtype=bool)]
        assert np.abs(off_diag).max() < 0.25

    def test_zero_and_negative_n(self):
        assert spawn_keys(1, 0) == []
        assert spawn(1, 0) == []
        with pytest.raises(ValueError):
            spawn_keys(1, -1)

    def test_slicing_equals_serial_children(self):
        """The parallel engine's core move: derive all keys once, slice,
        and get the same streams the serial spawn produced."""
        n = 13
        serial = spawn(777, n)
        keys = spawn_keys(777, n)
        for start, stop in ((0, 5), (5, 9), (9, 13)):
            for key, child in zip(keys[start:stop], serial[start:stop]):
                assert np.array_equal(
                    np.random.default_rng(key).random(8), child.random(8)
                )
