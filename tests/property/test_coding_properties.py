"""Property-based tests: coding-theory round trips under random errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode

BCH = BchCode.design(5, 3)  # (31, 16, t=3)
CONCAT = ConcatenatedCode(outer=BCH, inner=RepetitionCode(3))


def bits(n):
    return st.lists(st.integers(0, 1), min_size=n, max_size=n).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    )


def error_positions(n, max_errors):
    return st.lists(
        st.integers(0, n - 1), min_size=0, max_size=max_errors, unique=True
    )


class TestBchProperties:
    @given(msg=bits(BCH.k))
    @settings(max_examples=40)
    def test_encode_decode_identity(self, msg):
        cw = BCH.encode(msg)
        corrected, n = BCH.decode(cw)
        assert n == 0
        assert np.array_equal(corrected, cw)

    @given(msg=bits(BCH.k), errs=error_positions(BCH.n, BCH.t))
    @settings(max_examples=60)
    def test_corrects_any_pattern_up_to_t(self, msg, errs):
        cw = BCH.encode(msg)
        rx = cw.copy()
        rx[errs] ^= 1
        corrected, found = BCH.decode(rx)
        assert np.array_equal(corrected, cw)
        assert found == len(errs)

    @given(m1=bits(BCH.k), m2=bits(BCH.k))
    @settings(max_examples=40)
    def test_linearity(self, m1, m2):
        assert np.array_equal(
            BCH.encode(m1) ^ BCH.encode(m2), BCH.encode(m1 ^ m2)
        )

    @given(msg=bits(BCH.k))
    @settings(max_examples=40)
    def test_systematic_extraction(self, msg):
        assert np.array_equal(BCH.extract_message(BCH.encode(msg)), msg)


class TestRepetitionProperties:
    @given(msg=bits(8))
    @settings(max_examples=40)
    def test_roundtrip(self, msg):
        code = RepetitionCode(5)
        assert np.array_equal(code.decode(code.encode(msg)), msg)

    @given(msg=bits(4), flips=error_positions(4 * 5, 4))
    @settings(max_examples=60)
    def test_sub_majority_flips_per_group_corrected(self, msg, flips):
        code = RepetitionCode(5)
        cw = code.encode(msg)
        groups = {}
        for f in flips:
            groups.setdefault(f // 5, []).append(f)
        safe = [f for g, fs in groups.items() if len(fs) <= code.t for f in fs]
        rx = cw.copy()
        rx[safe] ^= 1
        assert np.array_equal(code.decode(rx), msg)


class TestConcatenatedProperties:
    @given(msg=bits(CONCAT.k))
    @settings(max_examples=30)
    def test_roundtrip(self, msg):
        assert np.array_equal(CONCAT.decode_message(CONCAT.encode(msg)), msg)

    @given(msg=bits(CONCAT.k), errs=error_positions(CONCAT.n, 3))
    @settings(max_examples=40)
    def test_scattered_errors_corrected(self, msg, errs):
        """Up to three scattered raw flips can at worst flip three outer
        bits — within the outer code's t=3."""
        cw = CONCAT.encode(msg)
        rx = cw.copy()
        rx[errs] ^= 1
        assert np.array_equal(CONCAT.decode_message(rx), msg)

    @given(msg=bits(CONCAT.k), errs=error_positions(CONCAT.n, 3))
    @settings(max_examples=40)
    def test_correct_returns_nearest_codeword(self, msg, errs):
        cw = CONCAT.encode(msg)
        rx = cw.copy()
        rx[errs] ^= 1
        assert np.array_equal(CONCAT.correct(rx), cw)


class TestKeyCodecProperties:
    CODEC = KeyCodec(code=CONCAT, key_bits=32)

    @given(msg=bits(KeyCodec(code=CONCAT, key_bits=32).message_bits))
    @settings(max_examples=20)
    def test_roundtrip(self, msg):
        assert np.array_equal(self.CODEC.decode(self.CODEC.encode(msg)), msg)

    @given(p=st.floats(0.0, 0.49))
    def test_failure_probability_is_probability(self, p):
        assert 0.0 <= self.CODEC.key_failure_probability(p) <= 1.0

    @given(p=st.floats(0.0, 0.3), q=st.floats(0.0, 0.3))
    def test_failure_monotone(self, p, q):
        lo, hi = sorted((p, q))
        assert self.CODEC.key_failure_probability(
            lo
        ) <= self.CODEC.key_failure_probability(hi) + 1e-12
