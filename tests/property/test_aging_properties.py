"""Property-based tests: aging laws and device-model monotonicities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging import bti_shift, hci_shift
from repro.transistor import drive_current, ptm90, transition_delay

TECH = ptm90()

duties = st.floats(0.0, 1.0)
years = st.floats(0.0, 40.0)
temps = st.floats(240.0, 400.0)
vths = st.floats(0.05, 0.6)


class TestBtiMonotonicity:
    @given(d=duties, t1=years, t2=years)
    def test_monotone_in_time(self, d, t1, t2):
        lo, hi = sorted((t1, t2))
        a = float(bti_shift(d, lo, TECH.nbti))
        b = float(bti_shift(d, hi, TECH.nbti))
        assert a <= b + 1e-15

    @given(d1=duties, d2=duties, t=years)
    def test_monotone_in_duty(self, d1, d2, t):
        lo, hi = sorted((d1, d2))
        a = float(bti_shift(lo, t, TECH.nbti))
        b = float(bti_shift(hi, t, TECH.nbti))
        assert a <= b + 1e-15

    @given(d=duties, t=years, temp=temps)
    def test_bounded_by_saturation(self, d, t, temp):
        shift = float(
            bti_shift(d, t, TECH.nbti, prefactor=10.0, temperature_k=temp)
        )
        assert 0.0 <= shift <= TECH.nbti.max_shift

    @given(d=duties, t=years)
    def test_pbti_never_exceeds_nbti(self, d, t):
        nbti = float(bti_shift(d, t, TECH.nbti))
        pbti = float(bti_shift(d, t, TECH.nbti, pbti=True))
        assert pbti <= nbti + 1e-15


class TestHciMonotonicity:
    @given(n1=st.floats(0, 1e18), n2=st.floats(0, 1e18))
    def test_monotone_in_transitions(self, n1, n2):
        lo, hi = sorted((n1, n2))
        assert float(hci_shift(lo, TECH.hci)) <= float(hci_shift(hi, TECH.hci)) + 1e-15

    @given(n=st.floats(0, 1e20))
    def test_pmos_never_exceeds_nmos(self, n):
        assert float(hci_shift(n, TECH.hci, pmos=True)) <= float(
            hci_shift(n, TECH.hci)
        )


class TestDeviceMonotonicity:
    @given(v1=vths, v2=vths)
    def test_current_decreases_with_vth(self, v1, v2):
        lo, hi = sorted((v1, v2))
        assert float(drive_current(hi, TECH)) <= float(drive_current(lo, TECH))

    @given(v=vths)
    def test_delay_current_reciprocity(self, v):
        """delay * current == c_load * vdd (the model's defining identity)."""
        d = float(transition_delay(v, TECH))
        i = float(drive_current(v, TECH))
        assert d * i == pytest.approx(TECH.c_load * TECH.vdd, rel=1e-12)

    @given(v=vths, temp=temps)
    def test_delay_positive_at_all_corners(self, v, temp):
        assert float(transition_delay(v, TECH, temperature_k=temp)) > 0
