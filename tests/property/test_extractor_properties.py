"""Property-based tests: fuzzy extractor round trips and helper data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.keygen import FuzzyExtractor, HelperData

CODEC = KeyCodec(
    code=ConcatenatedCode(outer=BchCode.design(5, 2), inner=RepetitionCode(3)),
    key_bits=32,
)
EXTRACTOR = FuzzyExtractor(CODEC)
N = EXTRACTOR.response_bits


def bits(n):
    return st.lists(st.integers(0, 1), min_size=n, max_size=n).map(
        lambda xs: np.array(xs, dtype=np.uint8)
    )


class TestExtractorRoundTrip:
    @given(resp=bits(N), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_clean_roundtrip(self, resp, seed):
        helper, key = EXTRACTOR.enroll(resp, rng=seed)
        assert EXTRACTOR.reproduce(resp, helper) == key

    @given(
        resp=bits(N),
        seed=st.integers(0, 2**31 - 1),
        errs=st.lists(st.integers(0, N - 1), max_size=2, unique=True),
    )
    @settings(max_examples=30)
    def test_scattered_flip_roundtrip(self, resp, seed, errs):
        """Up to two scattered raw flips are always within Rep(3)+BCH(t=2)
        correction power."""
        helper, key = EXTRACTOR.enroll(resp, rng=seed)
        noisy = resp.copy()
        noisy[errs] ^= 1
        assert EXTRACTOR.reproduce(noisy, helper) == key

    @given(resp=bits(N), seed1=st.integers(0, 1000), seed2=st.integers(0, 1000))
    @settings(max_examples=20)
    def test_key_independent_of_mask(self, resp, seed1, seed2):
        _, k1 = EXTRACTOR.enroll(resp, rng=seed1)
        _, k2 = EXTRACTOR.enroll(resp, rng=seed2)
        assert k1 == k2


class TestHelperDataProperties:
    @given(offset=bits(93))
    @settings(max_examples=30)
    def test_serialisation_roundtrip(self, offset):
        h = HelperData(offset=offset, codec_spec="spec")
        back = HelperData.from_bytes(h.to_bytes(), n_bits=93, codec_spec="spec")
        assert np.array_equal(back.offset, offset)
