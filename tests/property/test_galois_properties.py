"""Property-based tests: GF(2^m) field axioms and polynomial algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import GF2m, poly_degree, poly_mod_gf2, poly_mul_gf2, poly_trim

FIELD = GF2m(6)  # 64 elements: big enough to be interesting, fast to test

elements = st.integers(min_value=0, max_value=FIELD.size - 1)
nonzero = st.integers(min_value=1, max_value=FIELD.size - 1)
polys = st.lists(st.integers(0, 1), min_size=1, max_size=24).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_addition_commutes(self, a, b):
        assert FIELD.add(a, b) == FIELD.add(b, a)

    @given(a=elements, b=elements)
    def test_multiplication_commutes(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_multiplication_associates(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @given(a=elements, b=elements, c=elements)
    def test_distributivity(self, a, b, c):
        left = FIELD.mul(a, FIELD.add(b, c))
        right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
        assert left == right

    @given(a=elements)
    def test_additive_inverse_is_self(self, a):
        assert FIELD.add(a, a) == 0

    @given(a=nonzero)
    def test_multiplicative_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(a=nonzero, b=nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert FIELD.div(FIELD.mul(a, b), b) == a

    @given(a=nonzero)
    def test_fermat(self, a):
        assert FIELD.pow(a, FIELD.order) == 1

    @given(a=nonzero, e=st.integers(-200, 200))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        base = a if e >= 0 else FIELD.inv(a)
        for _ in range(abs(e)):
            expected = FIELD.mul(expected, base)
        assert FIELD.pow(a, e) == expected


class TestPolynomialAlgebra:
    @given(a=polys, b=polys)
    def test_multiplication_commutes(self, a, b):
        assert poly_mul_gf2(a, b).tolist() == poly_mul_gf2(b, a).tolist()

    @given(a=polys, b=polys)
    def test_degree_of_product(self, a, b):
        da, db = poly_degree(a), poly_degree(b)
        dp = poly_degree(poly_mul_gf2(a, b))
        if da < 0 or db < 0:
            assert dp == -1
        else:
            assert dp == da + db

    @given(a=polys, m=polys)
    def test_mod_reduces_degree(self, a, m):
        if poly_degree(m) < 1:
            return  # constant/zero modulus is degenerate
        rem = poly_mod_gf2(a, m)
        assert poly_degree(rem) < poly_degree(m)

    @given(a=polys, m=polys)
    def test_exact_multiples_reduce_to_zero(self, a, m):
        if poly_degree(m) < 1:
            return
        product = poly_mul_gf2(a, m)
        assert not poly_mod_gf2(product, m).any()

    @given(a=polys)
    def test_trim_idempotent(self, a):
        once = poly_trim(a)
        twice = poly_trim(once)
        assert once.tolist() == twice.tolist()
