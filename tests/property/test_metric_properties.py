"""Property-based tests: metric definitions (bounds, symmetry, identities)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    bit_aliasing,
    fractional_hd,
    hamming_distance,
    pairwise_fractional_hd,
    uniformity_of,
)

bitvec = st.lists(st.integers(0, 1), min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def paired_bitvecs():
    return st.integers(1, 64).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
        )
    )


class TestHammingProperties:
    @given(pair=paired_bitvecs())
    def test_symmetry(self, pair):
        a, b = (np.array(x, dtype=np.uint8) for x in pair)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(a=bitvec)
    def test_identity(self, a):
        assert hamming_distance(a, a) == 0

    @given(pair=paired_bitvecs())
    def test_bounds(self, pair):
        a, b = (np.array(x, dtype=np.uint8) for x in pair)
        assert 0 <= hamming_distance(a, b) <= a.size
        assert 0.0 <= fractional_hd(a, b) <= 1.0

    @given(pair=paired_bitvecs())
    def test_complement_relation(self, pair):
        a, b = (np.array(x, dtype=np.uint8) for x in pair)
        assert fractional_hd(a, 1 - b) == pytest.approx(1.0 - fractional_hd(a, b))

    @given(
        trip=st.integers(1, 32).flatmap(
            lambda n: st.tuples(
                *(
                    st.lists(st.integers(0, 1), min_size=n, max_size=n)
                    for _ in range(3)
                )
            )
        )
    )
    def test_triangle_inequality(self, trip):
        a, b, c = (np.array(x, dtype=np.uint8) for x in trip)
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


class TestPopulationMetricProperties:
    responses = st.integers(2, 8).flatmap(
        lambda n_chips: st.integers(4, 32).flatmap(
            lambda width: st.lists(
                st.lists(st.integers(0, 1), min_size=width, max_size=width),
                min_size=n_chips,
                max_size=n_chips,
            )
        )
    )

    @given(rs=responses)
    @settings(max_examples=50)
    def test_pairwise_count_and_bounds(self, rs):
        mat = np.array(rs, dtype=np.uint8)
        dists = pairwise_fractional_hd(mat)
        n = mat.shape[0]
        assert dists.shape == (n * (n - 1) // 2,)
        assert np.all((0.0 <= dists) & (dists <= 1.0))

    @given(rs=responses)
    @settings(max_examples=50)
    def test_aliasing_bounds(self, rs):
        mat = np.array(rs, dtype=np.uint8)
        report = bit_aliasing(mat)
        assert np.all((0.0 <= report.per_bit) & (report.per_bit <= 1.0))
        assert 0.0 <= report.worst_bias <= 0.5

    @given(a=bitvec)
    def test_uniformity_complement(self, a):
        assert uniformity_of(a) == pytest.approx(1.0 - uniformity_of(1 - a))
