"""Property-based tests: event simulator and selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import EventSimulator, Netlist
from repro.core import select_stable_pairs


class TestInertialBufferChain:
    @given(
        edges=st.lists(
            st.tuples(st.floats(1e-9, 1e-6), st.booleans()),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_output_toggles_never_exceed_input_toggles(self, edges):
        """A buffer filters pulses; it can never invent transitions."""
        net = Netlist()
        net.add_input("in")
        net.gate("BUF", ["in"], "out", delay=5e-9)
        sim = EventSimulator(net)
        events = sorted(
            (t, "in", v) for (t, v) in edges
        )
        result = sim.run({"in": False}, t_end=1e-3, input_events=events)
        assert (
            result.waveforms["out"].n_toggles
            <= result.waveforms["in"].n_toggles
        )

    @given(
        delay=st.floats(1e-10, 1e-7),
        gap=st.floats(1e-10, 1e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_pulse_passes_iff_wider_than_delay(self, delay, gap):
        net = Netlist()
        net.add_input("in")
        net.gate("BUF", ["in"], "out", delay=delay)
        sim = EventSimulator(net)
        result = sim.run(
            {"in": False},
            t_end=1.0,
            input_events=[(1e-6, "in", True), (1e-6 + gap, "in", False)],
        )
        toggles = result.waveforms["out"].n_toggles
        if gap > delay * 1.0001:
            assert toggles == 2
        elif gap < delay * 0.9999:
            assert toggles == 0


class TestInverterChainParity:
    @given(n=st.integers(1, 8), value=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_settled_output_has_correct_parity(self, n, value):
        net = Netlist()
        net.add_input("in")
        prev = "in"
        for i in range(n):
            net.gate("INV", [prev], f"n{i}", delay=1e-9)
            prev = f"n{i}"
        state = EventSimulator(net).settle({"in": value})
        expected = bool(value) if n % 2 == 0 else not bool(value)
        assert state[prev] == expected


class TestSelectionProperties:
    freq_arrays = st.integers(2, 6).flatmap(
        lambda groups: st.lists(
            st.floats(0.5e9, 2.0e9, allow_nan=False),
            min_size=groups * 4,
            max_size=groups * 4,
        )
    )

    @given(freqs=freq_arrays)
    @settings(max_examples=50)
    def test_selected_gap_is_group_maximum(self, freqs):
        freqs = np.asarray(freqs)
        pairing = select_stable_pairs(freqs, k=4)
        for g, (a, b) in enumerate(pairing.pair_table):
            group = freqs[g * 4 : (g + 1) * 4]
            assert abs(freqs[a] - freqs[b]) == pytest.approx(
                group.max() - group.min()
            )

    @given(freqs=freq_arrays)
    @settings(max_examples=50)
    def test_pairs_disjoint_and_in_range(self, freqs):
        freqs = np.asarray(freqs)
        pairing = select_stable_pairs(freqs, k=4)
        flat = [i for pair in pairing.pair_table for i in pair]
        assert len(set(flat)) == len(flat)
        assert all(0 <= i < freqs.size for i in flat)
