"""NIST-style randomness battery: pass truly random, fail structured."""

import numpy as np
import pytest

from repro.metrics import (
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    longest_run_test,
    monobit_test,
    population_bits,
    randomness_battery,
    runs_test,
    serial_test,
)


@pytest.fixture(scope="module")
def random_bits():
    return np.random.default_rng(42).integers(0, 2, 20_000)


@pytest.fixture(scope="module")
def biased_bits():
    rng = np.random.default_rng(43)
    return (rng.random(20_000) < 0.7).astype(np.uint8)


@pytest.fixture(scope="module")
def alternating_bits():
    return np.tile([0, 1], 10_000)


ALL_TESTS = [
    monobit_test,
    block_frequency_test,
    runs_test,
    longest_run_test,
    serial_test,
    approximate_entropy_test,
    cumulative_sums_test,
]


class TestRandomInputPasses:
    @pytest.mark.parametrize("test_fn", ALL_TESTS)
    def test_random_sequence_passes(self, test_fn, random_bits):
        assert test_fn(random_bits) >= 0.01


class TestStructuredInputFails:
    def test_biased_fails_monobit(self, biased_bits):
        assert monobit_test(biased_bits) < 0.01

    def test_biased_fails_block_frequency(self, biased_bits):
        assert block_frequency_test(biased_bits) < 0.01

    def test_alternating_fails_runs(self, alternating_bits):
        assert runs_test(alternating_bits) < 0.01

    def test_alternating_fails_serial(self, alternating_bits):
        assert serial_test(alternating_bits) < 0.01

    def test_alternating_fails_entropy(self, alternating_bits):
        assert approximate_entropy_test(alternating_bits) < 0.01

    def test_long_runs_fail_longest_run(self):
        # balanced (passes monobit) but every 128-bit block carries a
        # 32-long run — wildly improbable for random data
        bits = np.tile([1] * 32 + [0] * 32, 312)
        assert longest_run_test(bits) < 0.01

    def test_drift_fails_cusum(self):
        rng = np.random.default_rng(45)
        bits = (rng.random(20_000) < 0.52).astype(np.uint8)  # slight drift
        assert cumulative_sums_test(bits) < 0.01


class TestEdgeCases:
    def test_all_p_values_in_unit_interval(self, random_bits, biased_bits):
        for bits in (random_bits, biased_bits):
            for fn in ALL_TESTS:
                assert 0.0 <= fn(bits) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([0, 1, 2])

    def test_short_sequence_longest_run_fallback(self):
        bits = np.random.default_rng(0).integers(0, 2, 64)
        assert 0.0 <= longest_run_test(bits) <= 1.0


class TestBattery:
    def test_random_passes_battery(self, random_bits):
        report = randomness_battery(random_bits)
        assert len(report.p_values) == 7
        assert report.all_passed()

    def test_biased_fails_battery(self, biased_bits):
        report = randomness_battery(biased_bits)
        assert not report.all_passed()
        passed = report.passed()
        assert not passed["monobit"]

    def test_population_bits_concatenates(self):
        bits = population_bits([[0, 1], [1, 1]])
        assert bits.tolist() == [0, 1, 1, 1]
