"""Reliability metric: flip fractions over populations and sweeps."""

import numpy as np
import pytest

from repro.metrics import flip_curve, flip_fraction, reliability


class TestFlipFraction:
    def test_no_flips(self):
        assert flip_fraction([0, 1, 1], [0, 1, 1]) == 0.0

    def test_some_flips(self):
        assert flip_fraction([0, 1, 1, 0], [1, 1, 1, 0]) == 0.25


class TestReliability:
    def test_aggregates(self):
        goldens = [np.array([0, 1, 1, 0]), np.array([1, 1, 0, 0])]
        observed = [np.array([0, 1, 0, 0]), np.array([1, 1, 0, 0])]
        report = reliability(goldens, observed)
        assert report.per_chip.tolist() == [0.25, 0.0]
        assert report.mean_flip_fraction == pytest.approx(0.125)
        assert report.worst_flip_fraction == 0.25
        assert report.percent() == pytest.approx(12.5)
        assert report.mean_reliability == pytest.approx(0.875)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="pair up"):
            reliability([np.zeros(4)], [])

    def test_empty_population(self):
        with pytest.raises(ValueError):
            reliability([], [])

    def test_single_chip_zero_std(self):
        report = reliability([np.array([0, 1])], [np.array([1, 1])])
        assert report.std_flip_fraction == 0.0


class TestReliabilityEdgeCases:
    def test_single_chip_population(self):
        """One chip: mean == worst == its flip fraction, std pinned to 0."""
        report = reliability([np.array([0, 1, 1, 0])], [np.array([1, 1, 1, 0])])
        assert report.per_chip.shape == (1,)
        assert report.mean_flip_fraction == 0.25
        assert report.worst_flip_fraction == 0.25
        assert report.std_flip_fraction == 0.0

    def test_single_chip_batched_fast_path(self):
        golden = np.array([[0, 1, 1, 0]])
        observed = np.array([[1, 1, 1, 0]])
        report = reliability(golden, observed)
        assert report.per_chip.tolist() == [0.25]
        assert report.std_flip_fraction == 0.0

    def test_zero_flip_population(self):
        goldens = [np.array([0, 1, 1]), np.array([1, 0, 1])]
        report = reliability(goldens, [g.copy() for g in goldens])
        assert report.per_chip.tolist() == [0.0, 0.0]
        assert report.mean_flip_fraction == 0.0
        assert report.worst_flip_fraction == 0.0
        assert report.std_flip_fraction == 0.0
        assert report.mean_reliability == 1.0

    def test_worst_flip_fraction_tie(self):
        """Several chips sharing the max: worst is that value, reported
        once, and every tied chip stays visible in per_chip."""
        goldens = [np.zeros(4, int)] * 3
        observeds = [
            np.array([1, 1, 0, 0]),  # 0.5
            np.array([0, 0, 1, 1]),  # 0.5 (tied worst)
            np.array([1, 0, 0, 0]),  # 0.25
        ]
        report = reliability(goldens, observeds)
        assert report.worst_flip_fraction == 0.5
        assert np.count_nonzero(report.per_chip == 0.5) == 2

    def test_all_chips_tied_at_total_flip(self):
        goldens = np.zeros((3, 4), int)
        observeds = np.ones((3, 4), int)
        report = reliability(goldens, observeds)
        assert report.worst_flip_fraction == 1.0
        assert report.mean_flip_fraction == 1.0
        assert report.std_flip_fraction == 0.0

    def test_batched_empty_bit_axis_rejected(self):
        with pytest.raises(ValueError, match="Hamming"):
            reliability(np.zeros((2, 0)), np.zeros((2, 0)))


class TestFlipCurve:
    def test_one_report_per_point(self):
        goldens = [np.array([0, 1, 1, 0])]
        sweep = [
            [np.array([0, 1, 1, 0])],
            [np.array([1, 1, 1, 0])],
            [np.array([1, 0, 1, 0])],
        ]
        reports = flip_curve(goldens, sweep)
        assert [r.mean_flip_fraction for r in reports] == [0.0, 0.25, 0.5]
