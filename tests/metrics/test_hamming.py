"""Hamming-distance primitives."""

import numpy as np
import pytest

from repro.metrics import (
    fractional_hd,
    hamming_distance,
    hd_matrix,
    pairwise_fractional_hd,
)


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance([0, 1, 1], [0, 1, 1]) == 0

    def test_all_different(self):
        assert hamming_distance([0, 1, 0], [1, 0, 1]) == 3

    def test_symmetric(self):
        a, b = [0, 1, 1, 0], [1, 1, 0, 0]
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            hamming_distance([0, 1], [0, 1, 1])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            hamming_distance([0, 2], [0, 1])


class TestFractionalHd:
    def test_half(self):
        assert fractional_hd([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fractional_hd([], [])


class TestPairwise:
    def test_count(self):
        rng = np.random.default_rng(0)
        responses = rng.integers(0, 2, (6, 32))
        dists = pairwise_fractional_hd(responses)
        assert dists.shape == (15,)

    def test_values(self):
        responses = [[0, 0], [0, 1], [1, 1]]
        dists = pairwise_fractional_hd(responses)
        assert sorted(dists.tolist()) == [0.5, 0.5, 1.0]

    def test_needs_two(self):
        with pytest.raises(ValueError):
            pairwise_fractional_hd([[0, 1]])

    def test_random_responses_near_half(self):
        rng = np.random.default_rng(1)
        responses = rng.integers(0, 2, (30, 256))
        assert pairwise_fractional_hd(responses).mean() == pytest.approx(0.5, abs=0.02)


class TestMatrix:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(2)
        responses = rng.integers(0, 2, (5, 16))
        mat = hd_matrix(responses)
        assert np.allclose(mat, mat.T)
        assert not np.any(np.diag(mat))

    def test_matches_pairwise(self):
        rng = np.random.default_rng(3)
        responses = rng.integers(0, 2, (4, 16))
        mat = hd_matrix(responses)
        flat = pairwise_fractional_hd(responses)
        iu = np.triu_indices(4, k=1)
        assert np.allclose(mat[iu], flat)
