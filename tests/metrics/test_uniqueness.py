"""Uniqueness metric and the HD histogram."""

import numpy as np
import pytest

from repro.metrics import hd_histogram, interchip_hd, uniqueness


class TestUniqueness:
    def test_ideal_population(self):
        rng = np.random.default_rng(0)
        responses = rng.integers(0, 2, (40, 128))
        report = uniqueness(responses)
        assert report.mean == pytest.approx(0.5, abs=0.02)
        assert report.percent() == pytest.approx(100 * report.mean)
        assert report.n_chips == 40
        assert report.n_pairs == 40 * 39 // 2

    def test_cloned_population(self):
        responses = [np.array([0, 1, 1, 0])] * 5
        report = uniqueness(responses)
        assert report.mean == 0.0
        assert report.maximum == 0.0

    def test_correlated_population_below_half(self):
        """Shared bias (same bit forced on every chip) drags the mean down."""
        rng = np.random.default_rng(1)
        responses = rng.integers(0, 2, (30, 128))
        responses[:, :64] = 1  # half the bits identical everywhere
        assert uniqueness(responses).mean == pytest.approx(0.25, abs=0.03)

    def test_std_and_extremes(self):
        rng = np.random.default_rng(2)
        report = uniqueness(rng.integers(0, 2, (20, 64)))
        assert 0 < report.std < 0.2
        assert report.minimum <= report.mean <= report.maximum


class TestHistogram:
    def test_bins_cover_unit_interval(self):
        rng = np.random.default_rng(0)
        centers, counts = hd_histogram(rng.integers(0, 2, (20, 64)), bins=10)
        assert centers.shape == (10,)
        assert counts.sum() == 20 * 19 // 2
        assert centers[0] == pytest.approx(0.05)
        assert centers[-1] == pytest.approx(0.95)

    def test_mass_concentrated_near_half(self):
        rng = np.random.default_rng(3)
        centers, counts = hd_histogram(rng.integers(0, 2, (30, 256)), bins=20)
        peak_bin = centers[np.argmax(counts)]
        assert abs(peak_bin - 0.5) < 0.08

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            hd_histogram([[0, 1], [1, 0]], bins=0)


class TestInterchipHd:
    def test_matches_report(self):
        rng = np.random.default_rng(4)
        responses = rng.integers(0, 2, (10, 32))
        dists = interchip_hd(responses)
        assert uniqueness(responses).mean == pytest.approx(dists.mean())
