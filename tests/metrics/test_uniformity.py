"""Uniformity and bit-aliasing metrics."""

import numpy as np
import pytest

from repro.metrics import bit_aliasing, uniformity, uniformity_of


class TestUniformityOf:
    def test_balanced(self):
        assert uniformity_of([0, 1, 0, 1]) == 0.5

    def test_all_ones(self):
        assert uniformity_of([1, 1, 1]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uniformity_of([])
        with pytest.raises(ValueError):
            uniformity_of([0, 2])


class TestUniformity:
    def test_population(self):
        report = uniformity([[0, 1, 1, 1], [0, 0, 0, 1]])
        assert report.per_chip.tolist() == [0.75, 0.25]
        assert report.mean == 0.5
        assert report.percent() == 50.0

    def test_random_population_near_half(self):
        rng = np.random.default_rng(0)
        report = uniformity(rng.integers(0, 2, (30, 256)))
        assert report.mean == pytest.approx(0.5, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity([])


class TestAliasing:
    def test_per_bit(self):
        responses = [[0, 1, 1], [0, 1, 0], [0, 1, 1]]
        report = bit_aliasing(responses)
        assert report.per_bit.tolist() == [0.0, 1.0, pytest.approx(2 / 3)]
        assert report.worst_bias == 0.5

    def test_ideal_population_low_bias(self):
        rng = np.random.default_rng(1)
        report = bit_aliasing(rng.integers(0, 2, (400, 64)))
        assert abs(report.mean - 0.5) < 0.02
        assert report.worst_bias < 0.12

    def test_needs_two_chips(self):
        with pytest.raises(ValueError):
            bit_aliasing([[0, 1]])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            bit_aliasing([[0, 3], [1, 0]])
