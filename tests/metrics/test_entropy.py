"""Entropy accounting metrics."""

import numpy as np
import pytest

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.metrics.entropy import (
    EntropyReport,
    collision_entropy_from_hd,
    extractable_key_bits,
    min_entropy_bits,
    response_entropy,
    shannon_bits,
)


class TestBitEntropies:
    def test_fair_bit(self):
        assert shannon_bits(0.5) == pytest.approx(1.0)
        assert min_entropy_bits(0.5) == pytest.approx(1.0)

    def test_deterministic_bit(self):
        assert shannon_bits(0.0) == 0.0
        assert shannon_bits(1.0) == 0.0
        assert min_entropy_bits(1.0) == 0.0

    def test_min_entropy_below_shannon(self):
        for p in (0.1, 0.3, 0.45, 0.7, 0.9):
            assert min_entropy_bits(p) <= shannon_bits(p) + 1e-12

    def test_symmetry(self):
        assert shannon_bits(0.3) == pytest.approx(shannon_bits(0.7))
        assert min_entropy_bits(0.3) == pytest.approx(min_entropy_bits(0.7))

    def test_validation(self):
        with pytest.raises(ValueError):
            shannon_bits(1.5)
        with pytest.raises(ValueError):
            min_entropy_bits(-0.1)


class TestResponseEntropy:
    def test_ideal_population(self):
        rng = np.random.default_rng(0)
        responses = rng.integers(0, 2, (400, 64))
        report = response_entropy(responses)
        assert report.n_bits == 64
        assert report.min_entropy_per_bit > 0.8
        assert report.total_min_entropy == pytest.approx(
            64 * report.min_entropy_per_bit
        )

    def test_biased_population_loses_entropy(self):
        rng = np.random.default_rng(1)
        ideal = rng.integers(0, 2, (200, 64))
        biased = (rng.random((200, 64)) < 0.8).astype(np.uint8)
        assert (
            response_entropy(biased).min_entropy_per_bit
            < response_entropy(ideal).min_entropy_per_bit
        )

    def test_cloned_population_has_none(self):
        responses = np.tile(np.arange(16) % 2, (10, 1))
        assert response_entropy(responses).total_min_entropy == 0.0

    def test_conventional_below_aro(self, conventional_study, aro_study):
        """The systematic bias costs the conventional design key material."""
        conv = response_entropy(conventional_study.responses())
        aro = response_entropy(aro_study.responses())
        assert conv.min_entropy_per_bit < aro.min_entropy_per_bit


class TestExtractableKeyBits:
    def test_ideal_material_supports_the_key(self):
        codec = KeyCodec(
            code=ConcatenatedCode(BchCode.design(7, 6), RepetitionCode(1)),
            key_bits=128,
        )
        report = EntropyReport(
            n_bits=codec.raw_bits,
            shannon_per_bit=1.0,
            min_entropy_per_bit=1.0,
            total_min_entropy=float(codec.raw_bits),
        )
        budget = extractable_key_bits(report, codec)
        # with full-entropy bits the budget is exactly k per block
        assert budget == pytest.approx(codec.message_bits)
        assert budget >= 128

    def test_weak_material_is_flagged_unsound(self):
        codec = KeyCodec(
            code=ConcatenatedCode(BchCode.design(7, 6), RepetitionCode(3)),
            key_bits=128,
        )
        report = EntropyReport(
            n_bits=codec.raw_bits,
            shannon_per_bit=0.35,
            min_entropy_per_bit=0.25,
            total_min_entropy=0.25 * codec.raw_bits,
        )
        assert extractable_key_bits(report, codec) < 0


class TestCollisionEntropy:
    def test_ideal_hd_gives_full_bits(self):
        assert collision_entropy_from_hd(0.5, 128) == pytest.approx(128.0)

    def test_correlated_population_loses_bits(self):
        assert collision_entropy_from_hd(0.45, 128) < 128.0

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_entropy_from_hd(1.5, 128)
        with pytest.raises(ValueError):
            collision_entropy_from_hd(0.5, 0)
