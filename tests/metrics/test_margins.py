"""Signed comparison margins: sign convention, summaries, histograms."""

import numpy as np
import pytest

from repro.core.readout import ReadoutConfig, compare_pairs
from repro.metrics import (
    DEFAULT_HIST_BINS,
    DEFAULT_HIST_LIMIT,
    histogram_edges,
    margin_histogram,
    relative_margins,
    summarize_margins,
)


class TestRelativeMargins:
    def test_known_values(self):
        freqs = np.array([110.0, 90.0, 100.0, 100.0])
        pairs = np.array([[0, 1], [2, 3]])
        margins = relative_margins(freqs, pairs)
        assert margins[0] == pytest.approx(20.0 / 100.0)
        assert margins[1] == 0.0

    def test_sign_matches_compare_pairs(self):
        from repro.transistor import ptm90

        rng = np.random.default_rng(7)
        freqs = rng.uniform(90.0e6, 110.0e6, size=(5, 16))
        pairs = np.array([[2 * k, 2 * k + 1] for k in range(8)])
        margins = relative_margins(freqs, pairs)
        bits = compare_pairs(freqs, pairs, ptm90(), ReadoutConfig())
        assert np.array_equal(margins > 0, bits.astype(bool))

    def test_batch_axes_preserved(self):
        freqs = np.ones((3, 4, 8))
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        assert relative_margins(freqs, pairs).shape == (3, 4, 3)

    def test_antisymmetric_in_pair_order(self):
        freqs = np.array([105.0, 95.0])
        fwd = relative_margins(freqs, np.array([[0, 1]]))
        rev = relative_margins(freqs, np.array([[1, 0]]))
        assert fwd[0] == pytest.approx(-rev[0])

    def test_bad_pairs_shape_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            relative_margins(np.ones(4), np.array([0, 1]))


class TestSummarizeMargins:
    def test_percentiles_of_abs(self):
        margins = np.array([-0.1, 0.2, -0.3, 0.4])
        summary = summarize_margins(margins, percentiles=(50.0,))
        assert summary.n_values == 4
        assert summary.min_abs == pytest.approx(0.1)
        assert summary.mean_abs == pytest.approx(0.25)
        assert summary.percentile(50) == pytest.approx(0.25)

    def test_default_percentile_set(self):
        summary = summarize_margins(np.linspace(-1, 1, 101))
        assert sorted(summary.abs_percentiles) == [5.0, 25.0, 50.0, 75.0, 95.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize_margins(np.array([]))


class TestHistogram:
    def test_edges_are_symmetric_with_zero_edge(self):
        edges = histogram_edges()
        assert edges.size == DEFAULT_HIST_BINS + 1
        assert edges[0] == -DEFAULT_HIST_LIMIT
        assert edges[-1] == DEFAULT_HIST_LIMIT
        # an even bin count puts zero on an edge: no bin straddles a flip
        assert 0.0 in edges

    def test_edge_validation(self):
        with pytest.raises(ValueError, match="positive"):
            histogram_edges(limit=0.0)
        with pytest.raises(ValueError, match="bins"):
            histogram_edges(n_bins=1)

    def test_counts_total_even_with_outliers(self):
        edges = histogram_edges(limit=0.1, n_bins=4)
        margins = np.array([-5.0, -0.09, 0.01, 0.09, 5.0])
        counts = margin_histogram(margins, edges)
        assert counts.dtype == np.int64
        assert counts.sum() == margins.size
        assert counts[0] == 2 and counts[-1] == 2  # outliers clipped in

    def test_shard_counts_sum_to_whole(self):
        """The property the parallel reduction relies on."""
        rng = np.random.default_rng(3)
        margins = rng.normal(0.0, 0.05, size=(10, 32))
        edges = histogram_edges()
        whole = margin_histogram(margins, edges)
        parts = sum(
            margin_histogram(shard, edges) for shard in np.array_split(margins, 3)
        )
        assert np.array_equal(whole, parts)

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            margin_histogram(np.array([0.0]), np.array([0.0, 1.0]))
