"""Validation: the closed-form identities behind the calibration.

DESIGN.md §5 and docs/physics.md derive two closed forms that the whole
calibration rests on:

* flip probability  ``P = (1/pi) * arctan(sigma_delta / sigma_Delta)``
  for a sign comparison whose margin and disturbance are independent
  zero-mean Gaussians, and
* inter-chip HD  ``1/2 - (1/pi) * arcsin(q^2 / (1+q^2))``
  when a chip-independent systematic offset (spread ``q`` relative to the
  random part) biases every chip's comparison identically.

These tests check the identities against direct Monte-Carlo — independent
of all circuit code — and then check that the *circuit-level* simulation
reproduces the arctan law when driven with controlled aging magnitudes.
"""

import numpy as np
import pytest


class TestArctanFlipLaw:
    @pytest.mark.parametrize("ratio", [0.25, 0.5, 1.0, 1.57, 3.0])
    def test_against_direct_monte_carlo(self, ratio):
        rng = np.random.default_rng(int(ratio * 100))
        n = 200_000
        margin = rng.standard_normal(n)
        disturbance = ratio * rng.standard_normal(n)
        flips = np.mean(np.sign(margin) != np.sign(margin + disturbance))
        predicted = np.arctan(ratio) / np.pi
        assert flips == pytest.approx(predicted, abs=0.004)

    def test_limits(self):
        assert np.arctan(0.0) / np.pi == 0.0
        # infinite disturbance: the sign is re-randomised -> 50 %
        assert np.arctan(np.inf) / np.pi == pytest.approx(0.5)

    def test_paper_anchor_ratios(self):
        """The ratios quoted in DESIGN.md §5 map back to 32 % / 7.7 %."""
        assert np.arctan(1.57) / np.pi == pytest.approx(0.32, abs=0.01)
        assert np.arctan(0.247) / np.pi == pytest.approx(0.077, abs=0.005)


class TestArcsinUniquenessLaw:
    @pytest.mark.parametrize("q", [0.0, 0.25, 0.43, 0.8])
    def test_against_direct_monte_carlo(self, q):
        rng = np.random.default_rng(int(q * 1000) + 7)
        n = 400_000
        systematic = q * rng.standard_normal(n)  # shared across both chips
        chip_a = systematic + rng.standard_normal(n)
        chip_b = systematic + rng.standard_normal(n)
        hd = np.mean(np.sign(chip_a) != np.sign(chip_b))
        predicted = 0.5 - np.arcsin(q**2 / (1 + q**2)) / np.pi
        assert hd == pytest.approx(predicted, abs=0.004)

    def test_paper_anchor(self):
        """q ~= 0.43 lands on the paper's ~45 % conventional HD."""
        q = 0.43
        predicted = 0.5 - np.arcsin(q**2 / (1 + q**2)) / np.pi
        assert predicted == pytest.approx(0.448, abs=0.005)


class TestCircuitLevelArctanLaw:
    def test_simulated_flips_follow_the_law(self):
        """Scale the NBTI prefactor and watch the full circuit-level flip
        rate track arctan(scale * ratio0) — the end-to-end check that the
        mechanistic simulation embodies the closed form."""
        import dataclasses

        from repro.core import conventional_design, make_study
        from repro.metrics import reliability
        from repro.transistor import ptm90

        flips = {}
        for scale in (0.5, 1.0, 2.0):
            tech = ptm90()
            tech = tech.replace(
                nbti=dataclasses.replace(
                    tech.nbti, a_mean=tech.nbti.a_mean * scale
                )
            )
            design = conventional_design(n_ros=256, tech=tech)
            study = make_study(design, n_chips=12, rng=6)
            fresh = study.responses()
            aged = study.responses(t_years=10.0)
            flips[scale] = reliability(fresh, aged).mean_flip_fraction

        # invert the law to recover the underlying ratio at each scale
        ratios = {s: np.tan(np.pi * f) for s, f in flips.items()}
        # the disturbance scales (nearly) linearly with the prefactor; the
        # saturation cap bends the top end slightly, so allow 25 %
        assert ratios[2.0] / ratios[1.0] == pytest.approx(2.0, rel=0.25)
        assert ratios[1.0] / ratios[0.5] == pytest.approx(2.0, rel=0.25)


class TestRepetitionLawValidation:
    def test_binomial_model_matches_decoder(self):
        """The analytic repetition error model against the real decoder at
        several operating points (beyond the single point in unit tests)."""
        from repro.ecc import RepetitionCode

        rng = np.random.default_rng(11)
        for r in (3, 7, 11):
            code = RepetitionCode(r)
            for p in (0.1, 0.3):
                msg = np.zeros(30_000, dtype=np.uint8)
                cw = code.encode(msg)
                noisy = cw ^ (rng.random(cw.size) < p).astype(np.uint8)
                empirical = float(code.decode(noisy).mean())
                assert empirical == pytest.approx(
                    code.decoded_error_probability(p), rel=0.08, abs=5e-4
                )


class TestNoiseFlipLaw:
    def test_jitter_flip_rate_matches_closed_form(self):
        """Measurement-noise flips at t=0 follow the same arctan law with
        the jitter spread in the numerator."""
        from repro.core import conventional_design, make_study
        from repro.metrics import reliability

        design = conventional_design(n_ros=256)
        study = make_study(design, n_chips=10, rng=13)
        goldens = study.responses()
        noisy = [
            inst.evaluate(noisy=True, rng=100 + i)
            for i, inst in enumerate(study.instances)
        ]
        measured = reliability(goldens, noisy).mean_flip_fraction

        # sigma_Delta: relative pair-frequency spread, measured directly
        diffs = []
        for inst in study.instances:
            f = inst.frequencies()
            pairs = design.pairing.pairs(design.n_ros)
            diffs.append((f[pairs[:, 0]] - f[pairs[:, 1]]) / f.mean())
        sigma_delta_pair = float(np.std(np.concatenate(diffs)))
        jitter_pair = design.tech.eval_jitter * np.sqrt(2)
        predicted = np.arctan(jitter_pair / sigma_delta_pair) / np.pi
        assert measured == pytest.approx(predicted, rel=0.35)
