"""The margin-capture slot: install semantics and hot-path dispatch."""

import numpy as np
import pytest

from repro.forensics import hook
from repro.forensics.hook import (
    active_collector,
    collector_session,
    install_collector,
    record_response_margins,
    uninstall_collector,
)


class Sink:
    def __init__(self):
        self.calls = []

    def record(self, frequencies, pairs, t_years, conditions):
        self.calls.append((frequencies, pairs, t_years, conditions))


@pytest.fixture(autouse=True)
def clean_slot():
    yield
    uninstall_collector()


class TestSlot:
    def test_install_and_active(self):
        sink = Sink()
        install_collector(sink)
        assert active_collector() is sink

    def test_double_install_raises(self):
        install_collector(Sink())
        with pytest.raises(RuntimeError, match="already installed"):
            install_collector(Sink())

    def test_uninstall_idempotent(self):
        install_collector(Sink())
        uninstall_collector()
        assert active_collector() is None
        uninstall_collector()  # second call is a no-op


class TestSession:
    def test_restores_previous_collector(self):
        outer, inner = Sink(), Sink()
        install_collector(outer)
        with collector_session(inner) as active:
            assert active is inner
            assert active_collector() is inner
        assert active_collector() is outer

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with collector_session(Sink()):
                raise RuntimeError("boom")
        assert active_collector() is None

    def test_nested_sessions(self):
        a, b = Sink(), Sink()
        with collector_session(a):
            with collector_session(b):
                assert active_collector() is b
            assert active_collector() is a


class TestRecordResponseMargins:
    def test_disabled_is_silent(self):
        assert active_collector() is None
        record_response_margins(np.ones(4), np.array([[0, 1]]), 0.0, None)

    def test_dispatches_to_installed_collector(self):
        sink = Sink()
        freqs = np.ones(4)
        pairs = np.array([[0, 1]])
        with collector_session(sink):
            record_response_margins(freqs, pairs, 5.0, None)
        assert len(sink.calls) == 1
        assert sink.calls[0][0] is freqs
        assert sink.calls[0][2] == 5.0

    def test_module_slot_is_the_session_state(self):
        """Workers sever capture by nulling the slot; keep that invariant."""
        with collector_session(Sink()):
            hook._collector = None
            record_response_margins(np.ones(2), np.array([[0, 1]]), 0.0, None)
        assert active_collector() is None
