"""Explain exports: JSON payload schema, bit tables, PPM heatmap."""

import json

import numpy as np
import pytest

from repro.core import aro_design, make_batch_study
from repro.forensics import capture_forensics
from repro.forensics.export import (
    EXPLAIN_FORMAT,
    design_payload,
    explain_payload,
    write_explain_json,
    write_margin_heatmap,
)
from repro.forensics.report import (
    bit_rows,
    render_bit_table,
    render_forensics_summary,
)

SEED = 20140324
DESIGN = aro_design(n_ros=16, n_stages=3)


@pytest.fixture(scope="module")
def report():
    study = make_batch_study(DESIGN, 5, rng=SEED)
    return capture_forensics(study, design_label="aro-puf")


class TestBitRows:
    def test_sorted_by_abs_fresh_margin(self, report):
        rows = bit_rows(report, chip=0, top=None)
        assert len(rows) == report.n_bits
        magnitudes = [abs(r["fresh_margin"]) for r in rows]
        assert magnitudes == sorted(magnitudes)

    def test_top_limits_rows(self, report):
        assert len(bit_rows(report, chip=0, top=3)) == 3

    def test_shift_decomposition_in_rows(self, report):
        for r in bit_rows(report, chip=1, top=5):
            assert r["total_shift"] == pytest.approx(
                r["horizon_margin"] - r["fresh_margin"]
            )

    def test_bad_chip_rejected(self, report):
        with pytest.raises(ValueError, match="chip"):
            bit_rows(report, chip=99)


class TestRender:
    def test_summary_mentions_design_and_columns(self, report):
        text = render_forensics_summary({"aro-puf": report})
        assert "aro-puf" in text
        assert "recall" in text and "at-risk %" in text

    def test_bit_table_mentions_chip_and_status(self, report):
        text = render_bit_table(report, chip=0, top=4)
        assert "chip 0" in text
        assert "dBTI %" in text and "dHCI %" in text


class TestJsonPayload:
    def test_design_payload_schema(self, report):
        payload = design_payload(report, chip=0, top=4)
        assert payload["design"] == "aro-puf"
        assert payload["n_chips"] == 5
        assert set(payload["status_counts"]) == {"stable", "at-risk", "flipped"}
        assert sum(payload["status_counts"].values()) == 5 * report.n_bits
        forecast = payload["forecast"]
        assert 0.0 <= forecast["recall"] <= 1.0
        assert forecast["threshold"] == pytest.approx(
            forecast["k"] * forecast["drift_scale"]
        )
        assert len(payload["chip"]["bits"]) == 4

    def test_histogram_counts_keyed_by_year(self, report):
        payload = design_payload(report)
        hist = payload["histogram"]
        assert len(hist["edges"]) == report.hist_edges.size
        for t in report.years:
            assert f"{t:g}" in hist["counts"]
            assert sum(hist["counts"][f"{t:g}"]) == 5 * report.n_bits

    def test_explain_payload_roundtrip(self, report, tmp_path):
        payload = explain_payload(
            {"aro-puf": report}, config={"n_chips": 5, "seed": SEED}
        )
        assert payload["format"] == EXPLAIN_FORMAT
        assert payload["kind"] == "explain"
        path = write_explain_json(tmp_path / "deep" / "e.json", payload)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(payload))  # JSON-serialisable

    def test_payload_is_all_plain_types(self, report):
        json.dumps(explain_payload({"aro-puf": report}, config={}))


class TestHeatmap:
    def test_ppm_header_and_size(self, report, tmp_path):
        path = write_margin_heatmap(
            tmp_path / "m.ppm", report, cell_px=2
        )
        data = path.read_bytes()
        header = f"P6\n{2 * report.n_bits} {2 * report.n_chips}\n255\n"
        assert data.startswith(header.encode())
        assert len(data) == len(header) + 3 * 4 * report.n_chips * report.n_bits

    def test_flipped_cells_are_red_side(self, report, tmp_path):
        """Flipped bits must land on the red half of the diverging ramp."""
        path = write_margin_heatmap(tmp_path / "m.ppm", report, cell_px=1)
        raw = path.read_bytes()
        header_end = raw.index(b"255\n") + 4
        rgb = np.frombuffer(raw[header_end:], dtype=np.uint8).reshape(
            report.n_chips, report.n_bits, 3
        )
        flipped = report.flipped
        if flipped.any():
            cells = rgb[flipped].astype(int)
            assert (cells[:, 0] >= cells[:, 2]).all()  # red >= blue channel

    def test_bad_cell_px_rejected(self, report, tmp_path):
        with pytest.raises(ValueError, match="cell_px"):
            write_margin_heatmap(tmp_path / "m.ppm", report, cell_px=0)
