"""Margin capture: the collector tape and the assembled forensics record.

The bit-identity tests here are the PR's acceptance criterion: running a
study under an active collector must change no response bit, and the
assembled record must reconcile exactly (margins sign-match bits, the
mechanism split sums to the total delta, histogram counts total the
population).
"""

import numpy as np
import pytest

from repro.core import aro_design, conventional_design, make_batch_study
from repro.environment.conditions import OperatingConditions, celsius
from repro.forensics import (
    MarginCollector,
    capture_forensics,
    collector_session,
)
from repro.metrics.margins import relative_margins

SEED = 20140324
DESIGN = aro_design(n_ros=16, n_stages=3)


def make_case(design=DESIGN, n_chips=6):
    return make_batch_study(design, n_chips, rng=SEED)


@pytest.fixture(scope="module")
def report():
    return capture_forensics(make_case(), design_label="aro-puf")


class TestMarginCollector:
    def test_records_margins_per_corner(self):
        study = make_case()
        with collector_session(MarginCollector()) as collector:
            study.responses()
            study.responses(t_years=10.0)
        assert len(collector) == 2
        assert collector.has(0.0) and collector.has(10.0)
        pairs = study.design.pairing.pairs(study.design.n_ros, None)
        expected = relative_margins(study.frequencies(10.0), pairs)
        assert np.array_equal(collector.margins(10.0), expected)

    def test_recorded_grids_are_read_only(self):
        collector = MarginCollector()
        collector.record_margins(np.zeros((2, 3)), 0.0, None)
        with pytest.raises(ValueError):
            collector.margins(0.0)[0, 0] = 1.0

    def test_distinct_corners_are_distinct_keys(self):
        collector = MarginCollector()
        hot = OperatingConditions(temperature_k=celsius(85.0), vdd=1.0)
        collector.record_margins(np.zeros((1, 2)), 0.0, None)
        collector.record_margins(np.ones((1, 2)), 0.0, hot)
        assert len(collector) == 2
        assert collector.margins(0.0, hot)[0, 0] == 1.0

    def test_nominal_and_none_share_a_key(self):
        collector = MarginCollector()
        collector.record_margins(np.ones((1, 2)), 0.0, None)
        assert collector.has(0.0, OperatingConditions.nominal())

    def test_lru_bound(self):
        collector = MarginCollector(max_corners=2)
        for t in (1.0, 2.0, 3.0):
            collector.record_margins(np.zeros((1, 1)), t, None)
        assert len(collector) == 2
        assert not collector.has(1.0)
        assert [t for t, _ in collector.corners()] == [2.0, 3.0]

    def test_missing_corner_keyerror_names_the_corner(self):
        with pytest.raises(KeyError, match="t=5.0"):
            MarginCollector().margins(5.0)

    def test_bad_max_corners(self):
        with pytest.raises(ValueError, match="max_corners"):
            MarginCollector(max_corners=0)


class TestCaptureBitIdentity:
    def test_capture_changes_no_response_bits(self):
        """Enabling forensics must not perturb the evaluation."""
        bare = make_case()
        expected = {t: bare.responses(t_years=t) for t in (0.0, 5.0, 10.0)}
        captured = make_case()
        report = capture_forensics(
            captured, design_label="aro-puf", years=(5.0,)
        )
        for t, bits in expected.items():
            assert np.array_equal(report.bits[t], bits)
        # and the study still answers identically after the capture
        for t, bits in expected.items():
            assert np.array_equal(captured.responses(t_years=t), bits)

    def test_no_collector_left_installed(self, report):
        from repro.forensics.hook import active_collector

        assert active_collector() is None


class TestDesignForensicsRecord:
    def test_grid_and_geometry(self, report):
        assert report.years[0] == 0.0
        assert report.t_horizon == 10.0
        assert report.years == tuple(sorted(set(report.years)))
        assert report.n_chips == 6
        assert report.n_bits == DESIGN.n_bits

    def test_margin_signs_match_bits_everywhere(self, report):
        for t in report.years:
            assert np.array_equal(
                report.margins[t] > 0, report.bits[t].astype(bool)
            )

    def test_flipped_matches_margin_sign_changes(self, report):
        sign_changed = (report.fresh_margins > 0) != (
            report.horizon_margins > 0
        )
        assert np.array_equal(report.flipped, sign_changed)

    def test_mechanism_shifts_bracket_the_total(self, report):
        """Each counterfactual explains part of the shift; the residual
        interaction term is small compared to the total."""
        total = np.abs(report.total_shift).mean()
        residual = np.abs(report.interaction_shift()).mean()
        assert residual < 0.2 * total
        # both mechanisms present, BTI dominating under the parked profile
        assert np.abs(report.bti_shift).mean() > 0
        assert np.abs(report.hci_shift).mean() > 0

    def test_histograms_total_population(self, report):
        for t in report.years:
            assert report.histograms[t].sum() == report.n_chips * report.n_bits

    def test_histograms_match_recorded_margins(self, report):
        from repro.metrics.margins import margin_histogram

        for t in report.years:
            assert np.array_equal(
                report.histograms[t],
                margin_histogram(report.margins[t], report.hist_edges),
            )

    def test_oriented_margins_positive_iff_holding(self, report):
        oriented = report.oriented_margins()
        holding = ~report.flipped
        # knife-edge zeros aside, positive oriented margin == bit held
        nonzero = oriented != 0
        assert np.array_equal((oriented > 0)[nonzero], holding[nonzero])

    def test_status_counts_are_consistent(self, report):
        status = report.status()
        assert (status == 2).sum() == report.flipped.sum()
        assert status.shape == (report.n_chips, report.n_bits)

    def test_forecast_scored_against_actual_flips(self, report):
        assert report.outcome.n_bits == report.n_chips * report.n_bits
        assert report.outcome.n_flipped == int(report.flipped.sum())


class TestCaptureApi:
    def test_negative_years_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            capture_forensics(make_case(), years=(-1.0,))

    def test_conventional_design_flips_more_and_forecast_catches(self):
        conv = capture_forensics(
            make_case(conventional_design(n_ros=16, n_stages=3)),
            design_label="ro-puf",
        )
        aro = capture_forensics(make_case(), design_label="aro-puf")
        assert conv.flipped_fraction > aro.flipped_fraction
        assert conv.outcome.recall >= 0.8
