"""Enrolment-time forecast: threshold math, scoring conventions, status."""

import numpy as np
import pytest

from repro.forensics import (
    STATUS_AT_RISK,
    STATUS_FLIPPED,
    STATUS_LABELS,
    STATUS_STABLE,
    classify_bits,
    forecast_at_risk,
    rms_drift,
    score_forecast,
)


class TestRmsDrift:
    def test_known_value(self):
        fresh = np.array([0.0, 0.0])
        aged = np.array([0.3, -0.4])
        assert rms_drift(fresh, aged) == pytest.approx(np.sqrt(0.125))

    def test_zero_drift(self):
        m = np.array([0.1, -0.2])
        assert rms_drift(m, m) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            rms_drift(np.array([]), np.array([]))


class TestForecastAtRisk:
    def test_threshold_is_k_times_drift(self):
        fresh = np.array([[0.01, 0.05, -0.02, 0.2]])
        forecast = forecast_at_risk(fresh, drift_scale=0.02, k=1.5)
        assert forecast.threshold == pytest.approx(0.03)
        assert forecast.at_risk.tolist() == [[True, False, True, False]]
        assert forecast.at_risk_fraction == pytest.approx(0.5)

    def test_strict_inequality_at_boundary(self):
        forecast = forecast_at_risk(np.array([0.03]), drift_scale=0.02, k=1.5)
        assert not forecast.at_risk[0]

    def test_zero_drift_scale_flags_nothing(self):
        forecast = forecast_at_risk(np.array([0.0, 0.1]), drift_scale=0.0)
        assert not forecast.at_risk.any()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="drift_scale"):
            forecast_at_risk(np.array([0.1]), drift_scale=-1.0)
        with pytest.raises(ValueError, match="k"):
            forecast_at_risk(np.array([0.1]), drift_scale=0.1, k=0.0)


class TestScoreForecast:
    def test_counts_and_rates(self):
        at_risk = np.array([True, True, False, False])
        flipped = np.array([True, False, True, False])
        outcome = score_forecast(at_risk, flipped)
        assert outcome.n_bits == 4
        assert outcome.n_flipped == 2
        assert outcome.n_at_risk == 2
        assert outcome.n_caught == 1
        assert outcome.precision == 0.5
        assert outcome.recall == 0.5

    def test_no_flips_recall_is_vacuously_one(self):
        outcome = score_forecast(np.array([True, False]), np.zeros(2, bool))
        assert outcome.recall == 1.0
        assert outcome.precision == 0.0  # a flag with nothing flipped

    def test_empty_at_risk_set(self):
        quiet = score_forecast(np.zeros(3, bool), np.zeros(3, bool))
        assert quiet.precision == 1.0 and quiet.recall == 1.0
        missed = score_forecast(np.zeros(3, bool), np.array([True, False, False]))
        assert missed.precision == 0.0 and missed.recall == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            score_forecast(np.zeros(3, bool), np.zeros(4, bool))


class TestClassifyBits:
    def test_flipped_wins_over_at_risk(self):
        at_risk = np.array([False, True, True, False])
        flipped = np.array([False, False, True, True])
        status = classify_bits(at_risk, flipped)
        assert status.tolist() == [
            STATUS_STABLE,
            STATUS_AT_RISK,
            STATUS_FLIPPED,
            STATUS_FLIPPED,
        ]
        assert status.dtype == np.int8

    def test_labels_cover_codes(self):
        assert set(STATUS_LABELS) == {
            STATUS_STABLE,
            STATUS_AT_RISK,
            STATUS_FLIPPED,
        }

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            classify_bits(np.zeros(2, bool), np.zeros(3, bool))
