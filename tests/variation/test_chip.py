"""Chip data model: validation, views, aging composition."""

import numpy as np
import pytest

from repro.variation import NMOS, PMOS, Chip, ChipPopulation, grid_positions


def make_chip(n_ros=4, n_stages=5, chip_id=0):
    vth = np.full((n_ros, n_stages, 2), 0.25)
    return Chip(
        vth=vth,
        positions=grid_positions(n_ros),
        tc_scale=np.ones_like(vth),
        chip_id=chip_id,
    )


class TestValidation:
    def test_wrong_vth_rank_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Chip(
                vth=np.full((4, 5), 0.25),
                positions=grid_positions(4),
                tc_scale=np.ones((4, 5)),
            )

    def test_nonpositive_threshold_rejected(self):
        vth = np.full((2, 3, 2), 0.25)
        vth[0, 0, 0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            Chip(vth=vth, positions=grid_positions(2), tc_scale=np.ones_like(vth))

    def test_position_shape_checked(self):
        vth = np.full((4, 5, 2), 0.25)
        with pytest.raises(ValueError, match="positions"):
            Chip(vth=vth, positions=np.zeros((3, 2)), tc_scale=np.ones_like(vth))

    def test_tc_scale_shape_checked(self):
        vth = np.full((4, 5, 2), 0.25)
        with pytest.raises(ValueError, match="tc_scale"):
            Chip(vth=vth, positions=grid_positions(4), tc_scale=np.ones((4, 5)))


class TestViews:
    def test_geometry_properties(self):
        chip = make_chip(n_ros=6, n_stages=7)
        assert chip.n_ros == 6
        assert chip.n_stages == 7

    def test_polarity_views(self):
        chip = make_chip()
        assert chip.vth_n.shape == (4, 5)
        assert np.array_equal(chip.vth_n, chip.vth[:, :, NMOS])
        assert np.array_equal(chip.vth_p, chip.vth[:, :, PMOS])

    def test_polarity_constants_distinct(self):
        assert NMOS != PMOS
        assert {NMOS, PMOS} == {0, 1}


class TestWithDelta:
    def test_returns_new_chip(self):
        chip = make_chip()
        delta = np.full(chip.vth.shape, 0.01)
        aged = chip.with_delta(delta)
        assert aged is not chip
        assert np.allclose(aged.vth, 0.26)
        assert np.allclose(chip.vth, 0.25)  # original untouched

    def test_preserves_identity_fields(self):
        chip = make_chip(chip_id=7)
        aged = chip.with_delta(np.zeros(chip.vth.shape))
        assert aged.chip_id == 7
        assert np.array_equal(aged.positions, chip.positions)

    def test_shape_mismatch_rejected(self):
        chip = make_chip()
        with pytest.raises(ValueError, match="shape"):
            chip.with_delta(np.zeros((1, 1, 2)))


class TestPopulation:
    def test_len_iter_index(self):
        pop = ChipPopulation(chips=[make_chip(chip_id=i) for i in range(3)])
        assert len(pop) == 3
        assert [c.chip_id for c in pop] == [0, 1, 2]
        assert pop[1].chip_id == 1

    def test_stacked_vth(self):
        pop = ChipPopulation(chips=[make_chip() for _ in range(3)])
        assert pop.stacked_vth().shape == (3, 4, 5, 2)

    def test_stacked_empty_raises(self):
        with pytest.raises(ValueError):
            ChipPopulation().stacked_vth()

    def test_map(self):
        pop = ChipPopulation(chips=[make_chip(chip_id=i) for i in range(3)])
        assert pop.map(lambda c: c.chip_id) == [0, 1, 2]


class TestGridPositions:
    def test_square_grid(self):
        pos = grid_positions(9)
        assert pos.shape == (9, 2)
        assert pos[:3, 1].tolist() == [0.0, 0.0, 0.0]  # first row
        assert pos[3, 1] == 1.0

    def test_non_square_count(self):
        pos = grid_positions(10)
        assert pos.shape == (10, 2)
        assert len({tuple(p) for p in pos}) == 10  # all distinct

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grid_positions(0)
