"""Monte-Carlo sampler: geometry, statistics, seeding discipline."""

import numpy as np
import pytest

from repro.transistor import ptm90
from repro.variation import LayoutStyle, VariationModel


@pytest.fixture(scope="module")
def model():
    return VariationModel(tech=ptm90(), n_ros=64, n_stages=5)


class TestGeometryValidation:
    def test_needs_two_ros(self):
        with pytest.raises(ValueError):
            VariationModel(tech=ptm90(), n_ros=1, n_stages=5)

    def test_even_stage_count_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            VariationModel(tech=ptm90(), n_ros=8, n_stages=4)

    def test_tiny_ring_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(tech=ptm90(), n_ros=8, n_stages=1)


class TestSampling:
    def test_chip_shape(self, model):
        chip = model.sample_chip(rng=0)
        assert chip.vth.shape == (64, 5, 2)
        assert chip.positions.shape == (64, 2)
        assert chip.tc_scale.shape == (64, 5, 2)

    def test_seeded_reproducibility(self, model):
        a = model.sample_chip(rng=7)
        b = model.sample_chip(rng=7)
        assert np.array_equal(a.vth, b.vth)

    def test_thresholds_near_nominal(self, model):
        chip = model.sample_chip(rng=0)
        tech = ptm90()
        assert abs(chip.vth.mean() - tech.vth_n) < 0.03
        assert np.all(chip.vth > 0.05)

    def test_device_mismatch_magnitude(self, model):
        """Per-device spread should be dominated by sigma_intra_die."""
        chip = model.sample_chip(rng=0)
        var = ptm90().variation
        # remove per-RO common modes, keep white mismatch
        white = chip.vth - chip.vth.mean(axis=(1, 2), keepdims=True)
        expected = var.sigma_intra_die * np.sqrt(1 - var.correlated_fraction)
        assert white.std() == pytest.approx(expected, rel=0.15)

    def test_tc_scale_centred_on_one(self, model):
        chip = model.sample_chip(rng=0)
        assert chip.tc_scale.mean() == pytest.approx(1.0, abs=0.01)


class TestLayoutStyles:
    def test_symmetric_layout_reduces_cross_chip_correlation(self):
        """The systematic component makes conventional chips look alike;
        the ARO's symmetric layout must remove that common structure."""

        def cross_chip_corr(layout):
            model = VariationModel(
                tech=ptm90(), n_ros=64, n_stages=5, layout=layout
            )
            chips = [model.sample_chip(rng=i) for i in range(40)]
            # per-RO mean threshold, de-meaned per chip: the across-chip
            # mean profile reveals the shared systematic component
            profiles = np.stack(
                [c.vth.mean(axis=(1, 2)) - c.vth.mean() for c in chips]
            )
            mean_profile = profiles.mean(axis=0)
            return float(np.std(mean_profile))

        conv = cross_chip_corr(LayoutStyle.CONVENTIONAL)
        aro = cross_chip_corr(LayoutStyle.SYMMETRIC)
        assert aro < 0.35 * conv


class TestPopulation:
    def test_population_size_and_ids(self, model):
        pop = model.sample_population(5, rng=1)
        assert len(pop) == 5
        assert [c.chip_id for c in pop] == list(range(5))

    def test_chips_are_independent(self, model):
        pop = model.sample_population(3, rng=1)
        assert not np.array_equal(pop[0].vth, pop[1].vth)

    def test_prefix_stability(self, model):
        """Growing the population must not change the earlier chips."""
        small = model.sample_population(2, rng=9)
        large = model.sample_population(4, rng=9)
        assert np.array_equal(small[0].vth, large[0].vth)
        assert np.array_equal(small[1].vth, large[1].vth)

    def test_rejects_nonpositive_count(self, model):
        with pytest.raises(ValueError):
            model.sample_population(0)
