"""Spatial variation fields: determinism, normalisation, cancellation."""

import numpy as np
import pytest

from repro.variation import (
    SYMMETRIC_RESIDUAL,
    LayoutStyle,
    correlated_field,
    effective_systematic,
    grid_positions,
    systematic_field,
)


@pytest.fixture(scope="module")
def positions():
    return grid_positions(64)


class TestSystematicField:
    def test_deterministic(self, positions):
        a = systematic_field(positions, 0.01)
        b = systematic_field(positions, 0.01)
        assert np.array_equal(a, b)

    def test_normalised_to_sigma(self, positions):
        field = systematic_field(positions, 0.01)
        assert field.std() == pytest.approx(0.01)
        assert field.mean() == pytest.approx(0.0, abs=1e-12)

    def test_scales_linearly_with_sigma(self, positions):
        assert np.allclose(
            systematic_field(positions, 0.02),
            2 * systematic_field(positions, 0.01),
        )

    def test_zero_sigma_is_zero(self, positions):
        assert not np.any(systematic_field(positions, 0.0))

    def test_single_position_no_gradient(self):
        assert systematic_field(np.array([[0.0, 0.0]]), 0.01)[0] == 0.0

    def test_smooth_over_neighbours(self):
        """At the paper's 16x16 array scale, adjacent slots see offsets
        much closer than the field's overall spread (pairing neighbours is
        what keeps conventional bits usable)."""
        field = systematic_field(grid_positions(256), 0.01)
        neighbour_diff = np.abs(np.diff(field[:16]))  # one grid row
        assert neighbour_diff.max() < 0.01

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            systematic_field(np.zeros(5), 0.01)
        with pytest.raises(ValueError):
            systematic_field(np.zeros((5, 3)), 0.01)

    def test_rejects_negative_sigma(self, positions):
        with pytest.raises(ValueError):
            systematic_field(positions, -0.01)


class TestCorrelatedField:
    def test_seeded_reproducibility(self, positions):
        a = correlated_field(positions, 0.01, 4.0, rng=5)
        b = correlated_field(positions, 0.01, 4.0, rng=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, positions):
        a = correlated_field(positions, 0.01, 4.0, rng=5)
        b = correlated_field(positions, 0.01, 4.0, rng=6)
        assert not np.array_equal(a, b)

    def test_marginal_sigma(self, positions):
        draws = np.stack(
            [correlated_field(positions, 0.01, 4.0, rng=i) for i in range(200)]
        )
        assert draws.std() == pytest.approx(0.01, rel=0.1)

    def test_neighbours_strongly_correlated(self, positions):
        draws = np.stack(
            [correlated_field(positions, 1.0, 4.0, rng=i) for i in range(300)]
        )
        corr = np.corrcoef(draws[:, 0], draws[:, 1])[0, 1]
        assert corr > 0.8  # distance 1 at correlation length 4

    def test_distant_points_weakly_correlated(self, positions):
        draws = np.stack(
            [correlated_field(positions, 1.0, 1.0, rng=i) for i in range(300)]
        )
        corr = np.corrcoef(draws[:, 0], draws[:, 63])[0, 1]
        assert abs(corr) < 0.25

    def test_zero_sigma_short_circuits(self, positions):
        assert not np.any(correlated_field(positions, 0.0, 4.0, rng=1))

    def test_parameter_validation(self, positions):
        with pytest.raises(ValueError):
            correlated_field(positions, -1.0, 4.0)
        with pytest.raises(ValueError):
            correlated_field(positions, 1.0, 0.0)


class TestLayoutCancellation:
    def test_conventional_exposes_full_field(self, positions):
        raw = systematic_field(positions, 0.01)
        eff = effective_systematic(positions, 0.01, LayoutStyle.CONVENTIONAL)
        assert np.array_equal(raw, eff)

    def test_symmetric_cancels_to_residual(self, positions):
        raw = systematic_field(positions, 0.01)
        eff = effective_systematic(positions, 0.01, LayoutStyle.SYMMETRIC)
        assert np.allclose(eff, SYMMETRIC_RESIDUAL * raw)
        assert eff.std() < 0.1 * raw.std()
