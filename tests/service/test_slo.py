"""SLO spec: band validation, judging, rendering, JSON loading."""

import json
import math

import pytest

from repro.service import (
    DEFAULT_SLOS,
    Slo,
    check_slos,
    load_slo_spec,
    render_slo_verdicts,
    slo_verdicts_payload,
)
from repro.telemetry.anchors import worst_status


class TestBands:
    def test_upper_bound_pass_warn_fail(self):
        slo = Slo(name="lat", metric="auth.p99_ms", bound="upper", pass_at=10, fail_at=50)
        assert slo.judge(10.0) == "pass"
        assert slo.judge(30.0) == "warn"
        assert slo.judge(50.0) == "warn"
        assert slo.judge(50.1) == "fail"

    def test_lower_bound_pass_warn_fail(self):
        slo = Slo(
            name="avail", metric="auth.availability", bound="lower",
            pass_at=0.999, fail_at=0.99,
        )
        assert slo.judge(1.0) == "pass"
        assert slo.judge(0.995) == "warn"
        assert slo.judge(0.98) == "fail"

    def test_non_finite_measurement_fails(self):
        slo = Slo(name="lat", metric="m", bound="upper", pass_at=1, fail_at=2)
        assert slo.judge(math.nan) == "fail"
        assert slo.judge(math.inf) == "fail"

    def test_inverted_bands_rejected(self):
        with pytest.raises(ValueError, match="fail_at >= pass_at"):
            Slo(name="x", metric="m", bound="upper", pass_at=50, fail_at=10)
        with pytest.raises(ValueError, match="fail_at <= pass_at"):
            Slo(name="x", metric="m", bound="lower", pass_at=0.9, fail_at=0.99)

    def test_unknown_bound_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            Slo(name="x", metric="m", bound="sideways", pass_at=1, fail_at=2)


class TestCheckSlos:
    def test_missing_metric_is_missing_status(self):
        verdicts = check_slos({}, DEFAULT_SLOS)
        assert all(v.status == "missing" for v in verdicts)
        assert all(v.measured is None for v in verdicts)

    def test_verdicts_feed_worst_status(self):
        """SloVerdict duck-types .status — the anchor aggregator works."""
        metrics = {
            "auth.availability": 1.0,
            "auth.p99_ms": 30.0,   # warn
            "auth.p999_ms": 40.0,  # pass
        }
        verdicts = check_slos(metrics, DEFAULT_SLOS)
        assert worst_status(verdicts) == "warn"
        metrics["auth.p99_ms"] = 500.0
        assert worst_status(check_slos(metrics, DEFAULT_SLOS)) == "fail"

    def test_payload_shape(self):
        verdicts = check_slos({"auth.availability": 1.0}, DEFAULT_SLOS[:1])
        (entry,) = slo_verdicts_payload(verdicts)
        assert entry == {
            "name": "auth-availability",
            "metric": "auth.availability",
            "bound": "lower",
            "pass_at": 0.999,
            "fail_at": 0.99,
            "unit": "",
            "measured": 1.0,
            "status": "pass",
        }


class TestRender:
    def test_marks_and_alignment(self):
        metrics = {"auth.availability": 0.5, "auth.p99_ms": 1.0}
        text = render_slo_verdicts(check_slos(metrics, DEFAULT_SLOS))
        lines = text.splitlines()
        assert len(lines) == len(DEFAULT_SLOS)
        assert lines[0].startswith("FAIL")
        assert lines[1].startswith("ok")
        assert lines[2].startswith("----")  # p999 missing

    def test_empty_verdicts(self):
        assert render_slo_verdicts([]) == "(no SLOs checked)"


class TestLoadSpec:
    def _write(self, tmp_path, payload):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(payload))
        return path

    def test_roundtrip(self, tmp_path):
        path = self._write(
            tmp_path,
            {
                "format": 1,
                "slos": [
                    {
                        "name": "tight-p99",
                        "metric": "auth.p99_ms",
                        "bound": "upper",
                        "pass_at": 2.0,
                        "fail_at": 5.0,
                        "unit": "ms",
                    }
                ],
            },
        )
        (slo,) = load_slo_spec(path)
        assert slo.name == "tight-p99"
        assert slo.judge(1.0) == "pass"
        assert slo.judge(9.0) == "fail"

    def test_bad_format_rejected(self, tmp_path):
        path = self._write(tmp_path, {"format": 99, "slos": [{}]})
        with pytest.raises(ValueError, match="format"):
            load_slo_spec(path)

    def test_unknown_keys_rejected(self, tmp_path):
        """A typo'd band name must not silently disable an objective."""
        path = self._write(
            tmp_path,
            {
                "format": 1,
                "slos": [
                    {
                        "name": "x",
                        "metric": "m",
                        "bound": "upper",
                        "pass_at": 1,
                        "fail_at": 2,
                        "fial_at": 3,
                    }
                ],
            },
        )
        with pytest.raises(ValueError, match="unknown keys"):
            load_slo_spec(path)

    def test_missing_key_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            {"format": 1, "slos": [{"name": "x", "metric": "m", "bound": "upper"}]},
        )
        with pytest.raises(ValueError, match="missing required key"):
            load_slo_spec(path)

    def test_empty_list_rejected(self, tmp_path):
        path = self._write(tmp_path, {"format": 1, "slos": []})
        with pytest.raises(ValueError, match="non-empty"):
            load_slo_spec(path)
