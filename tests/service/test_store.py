"""HelperStore / EnrollmentRecord: persistence, last-wins, validation."""

import json

import numpy as np
import pytest

from repro.service import EnrollmentRecord, HelperStore, default_extractor
from repro.service.store import key_digest


@pytest.fixture(scope="module")
def enrolled():
    """One real (helper, key, reference) triple from the default codec."""
    extractor = default_extractor()
    rng = np.random.default_rng(7)
    reference = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
    helper, key = extractor.enroll(reference, rng=rng)
    return reference, helper, key


def _record(enrolled, chip_id=3):
    reference, helper, key = enrolled
    return EnrollmentRecord(
        chip_id=chip_id,
        reference=reference,
        helper=helper,
        key_digest=key_digest(key),
    )


class TestEnrollmentRecord:
    def test_roundtrip(self, enrolled):
        record = _record(enrolled)
        clone = EnrollmentRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.chip_id == record.chip_id
        assert np.array_equal(clone.reference, record.reference)
        assert clone.key_digest == record.key_digest
        assert clone.helper.to_bytes() == record.helper.to_bytes()

    def test_reference_must_be_bits(self, enrolled):
        _, helper, key = enrolled
        with pytest.raises(ValueError, match="0/1"):
            EnrollmentRecord(
                chip_id=0,
                reference=np.array([0, 2, 1]),
                helper=helper,
                key_digest=key_digest(key),
            )

    def test_digest_is_not_the_key(self, enrolled):
        """The store commits to the key without containing it."""
        _, _, key = enrolled
        record = _record(enrolled)
        payload = record.to_dict()
        assert key.hex() not in json.dumps(payload)
        assert payload["key_digest"] == key_digest(key).hex()

    def test_short_reference_blob_rejected(self, enrolled):
        payload = _record(enrolled).to_dict()
        payload["reference"] = payload["reference"][:4]
        with pytest.raises(ValueError, match="too short"):
            EnrollmentRecord.from_dict(payload)


class TestHelperStore:
    def test_in_memory_put_get(self, enrolled):
        store = HelperStore()
        record = _record(enrolled)
        store.put(record)
        assert store.get(3) is record
        assert 3 in store
        assert store.get(99) is None
        assert len(store) == 1
        assert store.chip_ids() == [3]

    def test_persistence_across_reopen(self, enrolled, tmp_path):
        path = tmp_path / "helpers.jsonl"
        store = HelperStore(path)
        store.put(_record(enrolled, chip_id=1))
        store.put(_record(enrolled, chip_id=2))
        reopened = HelperStore(path)
        assert reopened.chip_ids() == [1, 2]
        assert np.array_equal(
            reopened.get(1).reference, _record(enrolled).reference
        )

    def test_reenrollment_last_wins(self, enrolled, tmp_path):
        path = tmp_path / "helpers.jsonl"
        store = HelperStore(path)
        store.put(_record(enrolled, chip_id=1))
        store.put(_record(enrolled, chip_id=1))  # appended, not rewritten
        assert len(path.read_text().splitlines()) == 2
        assert len(HelperStore(path)) == 1

    def test_malformed_lines_skipped_not_fatal(self, enrolled, tmp_path):
        path = tmp_path / "helpers.jsonl"
        store = HelperStore(path)
        store.put(_record(enrolled, chip_id=1))
        with path.open("a") as fh:
            fh.write("not json\n")
            fh.write('{"chip_id": 2}\n')  # missing every other field
        reopened = HelperStore(path)
        assert reopened.chip_ids() == [1]
        assert reopened.n_skipped == 2
