"""The TCP wire protocol: serve + ServiceClient/Pool round trips."""

import asyncio
import json

import numpy as np
import pytest

from repro.service import (
    FleetService,
    ServiceClient,
    ServiceClientPool,
    serve,
)


def _golden(service, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, service.response_bits, dtype=np.uint8)


async def _with_server(run):
    """Boot a service on a free port, run the test body, tear down."""
    service = FleetService(seed=0)
    server = await serve(service, port=0)
    port = server.sockets[0].getsockname()[1]
    try:
        return await run(service, port)
    finally:
        server.close()
        await server.wait_closed()


class TestRoundTrip:
    def test_enroll_auth_key_status(self):
        async def body(service, port):
            bits = _golden(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            try:
                enrolled = await client.enroll(0, [bits, bits, bits])
                assert enrolled["outcome"] == "ok"
                assert enrolled["n_bits"] == service.response_bits

                authed = await client.auth(0, bits)
                assert authed["outcome"] == "ok"
                assert authed["distance"] == 0.0

                keyed = await client.key(0, bits)
                assert keyed["outcome"] == "ok"
                assert len(bytes.fromhex(keyed["key"])) * 8 == keyed["key_bits"]

                status = await client.status()
                assert status["enrolled"] == 1
                # the status call itself is metered after its body runs
                assert status["requests"] == 3
            finally:
                await client.close()

        asyncio.run(_with_server(body))

    def test_bits_survive_hex_packing(self):
        """A non-byte-aligned width must round-trip exactly."""
        async def body(service, port):
            assert service.response_bits % 8 != 0  # the interesting case
            bits = _golden(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            try:
                await client.enroll(0, [bits])
                authed = await client.auth(0, bits)
                assert authed["distance"] == 0.0  # every bit intact
            finally:
                await client.close()

        asyncio.run(_with_server(body))


class TestWireErrors:
    async def _raw_call(self, port, payload: bytes):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(payload + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())
        finally:
            writer.close()
            await writer.wait_closed()

    def test_malformed_json_is_served_as_bad_request(self):
        async def body(service, port):
            reply = await self._raw_call(port, b"{not json")
            assert reply["outcome"] == "bad_request"
            # wire garbage is metered, not dropped
            assert service.red.requests == {"wire": 1}

        asyncio.run(_with_server(body))

    def test_unknown_op_over_the_wire(self):
        async def body(service, port):
            reply = await self._raw_call(port, json.dumps({"op": "nope"}).encode())
            assert reply["outcome"] == "bad_request"
            assert "unknown op" in reply["error"]

        asyncio.run(_with_server(body))

    def test_short_bit_blob_is_bad_request(self):
        async def body(service, port):
            reply = await self._raw_call(
                port,
                json.dumps(
                    {
                        "op": "auth",
                        "chip_id": 0,
                        "bits": service.response_bits,
                        "response": "ff",
                    }
                ).encode(),
            )
            assert reply["outcome"] == "bad_request"

        asyncio.run(_with_server(body))


class TestClientPool:
    def test_concurrent_calls_do_not_mispair_replies(self):
        """Workers sharing the pool must each get their own reply."""
        async def body(service, port):
            bits = _golden(service)
            pool = await ServiceClientPool.connect("127.0.0.1", port, size=4)
            try:
                await pool.enroll(0, [bits])

                async def probe(i):
                    # even i: genuine auth; odd i: unknown chip — the reply
                    # outcome proves which request this answer belongs to
                    if i % 2 == 0:
                        reply = await pool.auth(0, bits)
                        return reply["outcome"] == "ok"
                    reply = await pool.auth(1000 + i, bits)
                    return reply["outcome"] == "unknown_chip"

                results = await asyncio.gather(*(probe(i) for i in range(16)))
                assert all(results)
            finally:
                await pool.close()

        asyncio.run(_with_server(body))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ServiceClientPool([])
