"""Synthetic fleet aging + run_loadgen + the artefact payload shape."""

import asyncio

import numpy as np
import pytest

from repro.service import (
    DEFAULT_SLOS,
    FleetService,
    FleetSpec,
    SyntheticFleet,
    loadgen_payload,
    run_loadgen,
)
from repro.service.loadgen import DESIGN_FLIPS_10Y, SAMPLE_KEEP
from repro.telemetry import Histogram


class TestFleetSpec:
    def test_defaults(self):
        spec = FleetSpec()
        assert spec.design in DESIGN_FLIPS_10Y

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            FleetSpec(design="mystery-puf")

    def test_bounds(self):
        with pytest.raises(ValueError):
            FleetSpec(n_chips=0)
        with pytest.raises(ValueError):
            FleetSpec(noise_pct=50.0)


class TestSyntheticFleet:
    def test_flip_rate_anchored_at_paper_10y_numbers(self):
        """At the 10-year horizon the aging term equals the paper's flip
        percentage (32% conventional RO, 7.7% ARO) plus the noise floor."""
        for design, flips10 in DESIGN_FLIPS_10Y.items():
            fleet = SyntheticFleet(
                FleetSpec(design=design, noise_pct=1.0), response_bits=756
            )
            assert fleet.flip_rate(10.0) == pytest.approx(
                flips10 / 100.0 + 0.01
            )

    def test_flip_rate_sqrt_shape_and_cap(self):
        fleet = SyntheticFleet(FleetSpec(noise_pct=0.0), response_bits=756)
        assert fleet.flip_rate(0.0) == 0.0
        assert fleet.flip_rate(2.5) == pytest.approx(fleet.flip_rate(10.0) / 2)
        aggressive = SyntheticFleet(
            FleetSpec(design="ro-puf", noise_pct=40.0), response_bits=756
        )
        assert aggressive.flip_rate(1000.0) == 0.499  # never reaches 50%

    def test_read_flips_about_the_expected_fraction(self):
        fleet = SyntheticFleet(
            FleetSpec(seed=3, design="ro-puf", noise_pct=0.0),
            response_bits=4096,
        )
        aged = fleet.read(0, years=10.0)
        observed = np.mean(aged != fleet.golden[0])
        assert observed == pytest.approx(0.32, abs=0.04)

    def test_impostor_reads_other_silicon(self):
        fleet = SyntheticFleet(FleetSpec(n_chips=2, seed=0), response_bits=2048)
        impostor = fleet.impostor_read(0, years=0.0)
        genuine_d = np.mean(impostor != fleet.golden[1])
        claimed_d = np.mean(impostor != fleet.golden[0])
        assert genuine_d < 0.1  # near its real silicon
        assert 0.4 < claimed_d  # far from the claimed identity

    def test_reads_are_seeded_reproducible(self):
        a = SyntheticFleet(FleetSpec(seed=5), response_bits=756)
        b = SyntheticFleet(FleetSpec(seed=5), response_bits=756)
        assert np.array_equal(a.read(0, 5.0), b.read(0, 5.0))


class TestRunLoadgen:
    def _run(self, **kwargs):
        service = FleetService(seed=0)
        fleet = SyntheticFleet(
            FleetSpec(n_chips=3, seed=0), service.response_bits
        )
        return asyncio.run(run_loadgen(service, fleet, **kwargs))

    def test_request_bound_run(self):
        report = self._run(n_requests=40, concurrency=4, years=5.0)
        assert report.n_enrolled == 3
        assert report.n_requests == 40
        assert sum(report.outcomes.values()) == 40
        assert report.auth_per_s > 0
        assert len(report.samples) <= SAMPLE_KEEP
        sample = report.samples[-1]
        assert {"endpoint", "outcome", "duration_ms", "trace_id"} <= set(sample)

    def test_impostor_fraction_produces_rejections(self):
        report = self._run(
            n_requests=60, concurrency=4, years=1.0, impostor_fraction=0.5
        )
        assert report.outcomes.get("rejected", 0) > 0
        assert report.outcomes.get("ok", 0) > 0

    def test_key_fraction_hits_key_endpoint(self):
        report = self._run(
            n_requests=20, concurrency=2, years=1.0, key_fraction=1.0
        )
        assert report.red.requests.get("key", 0) == 20

    def test_exactly_one_bound_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            self._run()
        with pytest.raises(ValueError, match="exactly one"):
            self._run(n_requests=10, duration_s=1.0)

    def test_duration_bound_run_terminates(self):
        report = self._run(duration_s=0.2, concurrency=2, years=1.0)
        assert report.n_requests > 0
        assert report.wall_s < 5.0


class TestLoadgenPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        service = FleetService(seed=0)
        fleet = SyntheticFleet(
            FleetSpec(n_chips=2, seed=1), service.response_bits
        )
        report = asyncio.run(
            run_loadgen(service, fleet, n_requests=30, concurrency=2, years=2.0)
        )
        return loadgen_payload(
            report, slos=DEFAULT_SLOS, manifest={"git_sha": "abc"}
        )

    def test_bench_shaped_sections(self, payload):
        assert payload["name"] == "loadgen"
        for key in ("auth_per_s", "requests", "enrolled", "errors", "wall_s"):
            assert key in payload["values"]
        assert payload["values"]["requests"] == 30.0
        assert payload["manifest"] == {"git_sha": "abc"}
        summary = payload["histograms"]["service.auth.ok.ms"]
        assert {"count", "p50", "p99"} <= set(summary)

    def test_service_section(self, payload):
        service = payload["service"]
        assert service["format"] == 1
        assert service["fleet"]["n_chips"] == 2
        assert "auth.p99_ms" in service["metrics"]
        assert service["red"]["endpoints"]["auth"]["requests"] == 30
        hist = Histogram.from_dict(
            service["red"]["durations_ms"]["service.auth.ok.ms"]
        )
        assert hist.count > 0

    def test_slo_verdicts_ride_along(self, payload):
        names = {v["name"] for v in payload["service"]["slo"]}
        assert names == {s.name for s in DEFAULT_SLOS}
        for verdict in payload["service"]["slo"]:
            assert verdict["status"] in ("pass", "warn", "fail", "missing")

    def test_payload_is_json_clean(self, payload):
        import json

        json.dumps(payload)  # no numpy scalars / arrays leaked through
