"""FleetService endpoints in-process: enroll/auth/key semantics + driver."""

import asyncio

import numpy as np
import pytest

from repro import telemetry
from repro.service import FleetService, HelperStore, majority_vote
from repro.service.audit import AuditTrail, read_audit
from repro.telemetry import AsyncTracer


@pytest.fixture(autouse=True)
def clean_slate():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


@pytest.fixture(scope="module")
def service_and_chips():
    """One enrolled service + the golden responses it enrolled."""
    service = FleetService(seed=0)
    rng = np.random.default_rng(42)
    golden = {
        chip: rng.integers(0, 2, service.response_bits, dtype=np.uint8)
        for chip in range(3)
    }

    async def setup():
        for chip, bits in golden.items():
            reply = await service.enroll(chip, [bits] * 3)
            assert reply["outcome"] == "ok"

    asyncio.run(setup())
    return service, golden


def _flip(bits, fraction, seed=0):
    rng = np.random.default_rng(seed)
    flips = (rng.random(bits.size) < fraction).astype(np.uint8)
    return bits ^ flips


class TestMajorityVote:
    def test_majority_suppresses_noise(self):
        reads = [
            np.array([1, 1, 0, 0]),
            np.array([1, 0, 0, 0]),
            np.array([1, 1, 0, 1]),
        ]
        assert majority_vote(reads).tolist() == [1, 1, 0, 0]

    def test_tie_rounds_up(self):
        reads = [np.array([1, 0]), np.array([0, 0])]
        assert majority_vote(reads).tolist() == [1, 0]

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError, match="0/1"):
            majority_vote([np.array([0, 2])])


class TestEnroll:
    def test_enroll_commits_record(self, service_and_chips):
        service, _ = service_and_chips
        assert len(service.store) == 3
        record = service.store.get(0)
        assert record.n_bits == service.response_bits

    def test_wrong_width_is_bad_request(self):
        service = FleetService(seed=0)
        reply = asyncio.run(service.enroll(0, [np.zeros(8, dtype=np.uint8)]))
        assert reply["outcome"] == "bad_request"
        assert len(service.store) == 0


class TestAuth:
    def test_genuine_fresh_response_accepted(self, service_and_chips):
        service, golden = service_and_chips
        reply = asyncio.run(service.auth(0, _flip(golden[0], 0.01)))
        assert reply["outcome"] == "ok"
        assert reply["accepted"] is True
        assert reply["distance"] < 0.05

    def test_aged_response_within_threshold_accepted(self, service_and_chips):
        """The ARO's ~7.7% 10-year flip rate clears the 0.25 threshold."""
        service, golden = service_and_chips
        reply = asyncio.run(service.auth(0, _flip(golden[0], 0.077)))
        assert reply["outcome"] == "ok"

    def test_impostor_rejected_not_errored(self, service_and_chips):
        service, golden = service_and_chips
        before = service.red.total_errors()
        reply = asyncio.run(service.auth(0, golden[1]))
        assert reply["outcome"] == "rejected"
        assert reply["accepted"] is False
        assert reply["distance"] > 0.4
        assert service.red.total_errors() == before  # not an error

    def test_unknown_chip(self, service_and_chips):
        service, golden = service_and_chips
        reply = asyncio.run(service.auth(77, golden[0]))
        assert reply["outcome"] == "unknown_chip"

    def test_wrong_shape_is_bad_request(self, service_and_chips):
        service, _ = service_and_chips
        reply = asyncio.run(service.auth(0, np.zeros(8, dtype=np.uint8)))
        assert reply["outcome"] == "bad_request"


class TestKey:
    def test_regenerated_key_matches_enrollment_digest(self):
        service = FleetService(seed=0)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, service.response_bits, dtype=np.uint8)

        async def flow():
            enrolled = await service.enroll(0, [bits] * 3)
            regen = await service.key(0, _flip(bits, 0.05))
            return enrolled, regen

        enrolled, regen = asyncio.run(flow())
        assert regen["outcome"] == "ok"
        from repro.service.store import key_digest

        assert (
            key_digest(bytes.fromhex(regen["key"])).hex()
            == enrolled["key_digest"]
        )

    def test_hopeless_response_is_key_recovery(self, service_and_chips):
        service, golden = service_and_chips
        reply = asyncio.run(service.key(0, _flip(golden[0], 0.45)))
        assert reply["outcome"] == "key_recovery"
        assert "key" not in reply

    def test_unknown_chip(self, service_and_chips):
        service, golden = service_and_chips
        reply = asyncio.run(service.key(77, golden[0]))
        assert reply["outcome"] == "unknown_chip"


class TestDriver:
    def test_red_meters_every_outcome(self):
        service = FleetService(seed=0)
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, service.response_bits, dtype=np.uint8)

        async def flow():
            await service.enroll(0, [bits])
            await service.auth(0, bits)
            await service.auth(99, bits)

        asyncio.run(flow())
        state = service.red.to_dict()
        assert state["endpoints"]["auth"]["outcomes"] == {
            "ok": 1,
            "unknown_chip": 1,
        }
        assert state["endpoints"]["enroll"]["requests"] == 1

    def test_traced_request_carries_trace_id(self, tmp_path):
        tracer = telemetry.install(AsyncTracer())
        audit_path = tmp_path / "audit.jsonl"
        service = FleetService(seed=0, audit=AuditTrail(audit_path))
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, service.response_bits, dtype=np.uint8)

        async def flow():
            await service.enroll(0, [bits])
            return await service.auth(0, bits)

        reply = asyncio.run(flow())
        service.audit.close()
        assert reply["trace_id"] == 2  # second request on this tracer
        assert set(tracer.remote_lanes) == {"req-0"}
        spans = tracer.remote_lanes["req-0"]
        assert [s.name for s in spans] == ["request.enroll", "request.auth"]
        assert spans[1].attrs["outcome"] == "ok"
        records = list(read_audit(audit_path))
        assert [r["trace_id"] for r in records] == [1, 2]
        assert all(r["duration_ms"] >= 0 for r in records)

    def test_untraced_request_has_no_trace_id(self):
        service = FleetService(seed=0)
        reply = asyncio.run(service.status())
        assert "trace_id" not in reply

    def test_inject_latency_lands_in_measured_window(self):
        service = FleetService(seed=0, inject_latency_s=0.03)
        asyncio.run(service.status())
        hist = service.red.endpoint_histogram("status", "ok")
        assert hist.quantile(0.5) >= 25.0  # ms

    def test_status_reports_store_and_counters(self, service_and_chips):
        service, _ = service_and_chips
        reply = asyncio.run(service.status())
        assert reply["outcome"] == "ok"
        assert reply["enrolled"] == 3
        assert reply["response_bits"] == service.response_bits

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            FleetService(threshold=0.5)


class TestDispatch:
    def test_unknown_op_is_bad_request(self):
        service = FleetService(seed=0)
        reply = asyncio.run(service.dispatch({"op": "explode"}))
        assert reply["outcome"] == "bad_request"
        assert service.red.requests == {"wire": 1}

    def test_non_integer_chip_id_is_bad_request(self):
        service = FleetService(seed=0)
        reply = asyncio.run(
            service.dispatch({"op": "auth", "chip_id": "three"})
        )
        assert reply["outcome"] == "bad_request"
