"""Operating corners: construction and sweeps."""

import pytest

from repro.environment import (
    OperatingConditions,
    celsius,
    temperature_sweep,
    voltage_sweep,
)
from repro.transistor import T_REF_K, ptm90


class TestConditions:
    def test_nominal(self):
        cond = OperatingConditions.nominal()
        assert cond.temperature_k == T_REF_K
        assert cond.vdd is None

    def test_effective_vdd_default(self):
        tech = ptm90()
        assert OperatingConditions().effective_vdd(tech) == tech.vdd

    def test_effective_vdd_override(self):
        assert OperatingConditions(vdd=1.0).effective_vdd(ptm90()) == 1.0

    def test_celsius_helper(self):
        assert celsius(25.0) == pytest.approx(298.15)
        assert celsius(-40.0) == pytest.approx(233.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingConditions(temperature_k=-1.0)
        with pytest.raises(ValueError):
            OperatingConditions(vdd=0.0)

    def test_describe(self):
        label = OperatingConditions(temperature_k=celsius(85), vdd=1.08).describe()
        assert "85.0C" in label and "1.08V" in label
        assert "nom" in OperatingConditions().describe()


class TestSweeps:
    def test_temperature_sweep_endpoints(self):
        corners = temperature_sweep(-20, 85, steps=8)
        assert len(corners) == 8
        assert corners[0].temperature_k == pytest.approx(celsius(-20))
        assert corners[-1].temperature_k == pytest.approx(celsius(85))

    def test_voltage_sweep_relative(self):
        tech = ptm90()
        corners = voltage_sweep(tech, 0.9, 1.1, steps=5)
        assert corners[0].vdd == pytest.approx(0.9 * tech.vdd)
        assert corners[2].vdd == pytest.approx(tech.vdd)

    def test_sweep_needs_two_steps(self):
        with pytest.raises(ValueError):
            temperature_sweep(steps=1)
        with pytest.raises(ValueError):
            voltage_sweep(ptm90(), steps=1)
