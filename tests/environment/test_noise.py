"""Evaluation noise: jitter statistics, quantisation, voting."""

import numpy as np
import pytest

from repro.environment import majority_vote, noisy_counts, noisy_frequencies
from repro.transistor import ptm90


@pytest.fixture(scope="module")
def tech():
    return ptm90()


class TestNoisyCounts:
    def test_mean_count(self, tech):
        freqs = np.full(20_000, 1e9)
        counts = noisy_counts(freqs, 2e-5, tech, rng=0)
        assert counts.mean() == pytest.approx(2e4, rel=1e-3)

    def test_jitter_magnitude(self, tech):
        freqs = np.full(50_000, 1e9)
        counts = noisy_counts(freqs, 2e-5, tech, rng=0, quantize=False)
        rel = counts / 2e4 - 1.0
        assert rel.std() == pytest.approx(tech.eval_jitter, rel=0.05)

    def test_quantisation_floors(self, tech):
        counts = noisy_counts(np.array([1e9]), 2e-5, tech, rng=0)
        assert counts[0] == np.floor(counts[0])

    def test_validation(self, tech):
        with pytest.raises(ValueError):
            noisy_counts(np.array([1e9]), 0.0, tech)
        with pytest.raises(ValueError):
            noisy_counts(np.array([-1.0]), 1e-5, tech)

    def test_seeded(self, tech):
        f = np.full(10, 1e9)
        assert np.array_equal(
            noisy_counts(f, 1e-5, tech, rng=3), noisy_counts(f, 1e-5, tech, rng=3)
        )


class TestNoisyFrequencies:
    def test_centred_on_truth(self, tech):
        f = np.full(50_000, 1e9)
        noisy = noisy_frequencies(f, tech, rng=0)
        assert noisy.mean() == pytest.approx(1e9, rel=1e-4)
        assert noisy.std() / 1e9 == pytest.approx(tech.eval_jitter, rel=0.05)


class TestMajorityVote:
    def test_unanimous(self):
        votes = np.array([[1, 0, 1], [1, 0, 1], [1, 0, 1]])
        assert majority_vote(votes).tolist() == [1, 0, 1]

    def test_majority_wins(self):
        votes = np.array([[1, 0], [1, 1], [0, 0]])
        assert majority_vote(votes).tolist() == [1, 0]

    def test_tie_goes_to_one(self):
        votes = np.array([[1, 0], [0, 1]])
        assert majority_vote(votes).tolist() == [1, 1]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            majority_vote(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            majority_vote(np.zeros((0, 4)))

    def test_voting_cleans_noise(self, tech):
        """Majority over 9 noisy reads recovers a near-tie bit reliably."""
        rng = np.random.default_rng(0)
        f_a, f_b = 1.0e9 * (1 + 1e-3), 1.0e9  # 2-sigma-ish separation
        wins = 0
        for trial in range(200):
            reads = np.stack(
                [
                    (
                        noisy_frequencies(np.array([f_a]), tech, rng=rng)
                        > noisy_frequencies(np.array([f_b]), tech, rng=rng)
                    ).astype(np.uint8)
                    for _ in range(9)
                ]
            )
            wins += int(majority_vote(reads)[0])
        assert wins > 190
