"""Population persistence."""

import numpy as np
import pytest

from repro.core import conventional_design, make_study
from repro.io import load_chip, load_population, save_chip, save_population
from repro.variation import ChipPopulation, VariationModel
from repro.transistor import ptm90


@pytest.fixture(scope="module")
def population():
    model = VariationModel(tech=ptm90(), n_ros=16, n_stages=5)
    return model.sample_population(3, rng=8)


class TestRoundTrip:
    def test_population(self, population, tmp_path):
        path = tmp_path / "pop.npz"
        save_population(population, path)
        loaded = load_population(path)
        assert len(loaded) == 3
        for orig, back in zip(population, loaded):
            assert np.array_equal(orig.vth, back.vth)
            assert np.array_equal(orig.positions, back.positions)
            assert np.array_equal(orig.tc_scale, back.tc_scale)
            assert orig.chip_id == back.chip_id

    def test_single_chip(self, population, tmp_path):
        path = tmp_path / "chip.npz"
        save_chip(population[1], path)
        back = load_chip(path)
        assert np.array_equal(back.vth, population[1].vth)
        assert back.chip_id == 1

    def test_reloaded_chips_continue_experiments(self, tmp_path):
        """A reloaded chip must produce the exact same responses."""
        design = conventional_design(n_ros=16)
        study = make_study(design, n_chips=1, rng=4)
        golden = study.instances[0].golden_response()

        path = tmp_path / "chip.npz"
        save_chip(study.instances[0].chip, path)
        rebuilt = design.instantiate(load_chip(path))
        assert np.array_equal(rebuilt.golden_response(), golden)


class TestErrors:
    def test_empty_population_refused(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_population(ChipPopulation(), tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_population(tmp_path / "nope.npz")

    def test_load_chip_from_multichip_archive(self, population, tmp_path):
        path = tmp_path / "pop.npz"
        save_population(population, path)
        with pytest.raises(ValueError, match="load_population"):
            load_chip(path)

    def test_version_check(self, population, tmp_path):
        path = tmp_path / "pop.npz"
        save_population(population, path)
        # tamper with the version marker
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.array([99])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format 99"):
            load_population(path)
