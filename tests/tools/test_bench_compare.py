"""tools/bench_compare.py: regression diffing and the --json contract."""

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _write_results(path, name, values, counters=None, memory=None):
    path.mkdir(parents=True, exist_ok=True)
    payload = {"name": name, "values": values}
    if counters is not None:
        payload["counters"] = counters
    if memory is not None:
        payload["memory"] = memory
    (path / f"{name}.json").write_text(json.dumps(payload))


def _write_ledger(path, scalars_by_experiment):
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "ledger.jsonl", "w") as fh:
        for experiment, scalars in scalars_by_experiment.items():
            fh.write(
                json.dumps({"experiment": experiment, "scalars": scalars}) + "\n"
            )


@pytest.fixture
def result_dirs(tmp_path):
    old = tmp_path / "baseline"
    new = tmp_path / "candidate"
    _write_results(
        old, "bench", {"time_s": 1.0, "flips": 10.0}, {"kernel_blocks": 30.0}
    )
    _write_results(
        new, "bench", {"time_s": 1.1, "flips": 10.0}, {"kernel_blocks": 60.0}
    )
    return old, new


class TestLoadResults:
    def test_values_section(self, result_dirs):
        old, _ = result_dirs
        assert bench_compare.load_results(old) == {
            "bench:time_s": 1.0,
            "bench:flips": 10.0,
        }

    def test_counters_section(self, result_dirs):
        old, _ = result_dirs
        assert bench_compare.load_results(old, section="counters") == {
            "bench:kernel_blocks": 30.0
        }

    def test_non_artefact_files_skipped(self, tmp_path):
        (tmp_path / "junk.json").write_text('{"not": "an artefact"}')
        (tmp_path / "bad.json").write_text("{{{")
        assert bench_compare.load_results(tmp_path) == {}


class TestMain:
    def test_no_regression_exit_zero(self, result_dirs, capsys):
        old, new = result_dirs
        assert bench_compare.main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "kernel_blocks" in out  # counters diffed informationally

    def test_regression_exit_one(self, result_dirs, capsys):
        old, new = result_dirs
        code = bench_compare.main([str(old), str(new), "--threshold", "0.05"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_counter_growth_is_not_a_regression(self, result_dirs, capsys):
        # kernel_blocks doubled, but only `values` metrics gate the exit
        old, new = result_dirs
        assert bench_compare.main([str(old), str(new), "--threshold", "0.5"]) == 0

    def test_json_output_contract(self, result_dirs, tmp_path, capsys):
        old, new = result_dirs
        out = tmp_path / "diff" / "report.json"
        code = bench_compare.main(
            [str(old), str(new), "--threshold", "0.05", "--json", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["threshold"] == 0.05
        assert payload["regressions"] == ["bench:time_s"]
        by_metric = {row["metric"]: row for row in payload["rows"]}
        assert by_metric["bench:time_s"]["regression"] is True
        assert by_metric["bench:time_s"]["change"] == pytest.approx(0.1)
        assert by_metric["bench:flips"]["regression"] is False
        counters = {row["metric"]: row for row in payload["counters"]}
        assert counters["bench:kernel_blocks"]["change"] == pytest.approx(1.0)

    def test_json_written_even_without_regressions(self, result_dirs, tmp_path):
        old, new = result_dirs
        out = tmp_path / "diff.json"
        assert bench_compare.main([str(old), str(new), "--json", str(out)]) == 0
        assert json.loads(out.read_text())["regressions"] == []

    def test_missing_dir_exit_two(self, tmp_path, capsys):
        assert bench_compare.main([str(tmp_path / "nope"), str(tmp_path)]) == 2


class TestMemoryDiff:
    """The tolerant memory section: artefacts from before the store PR
    lack it entirely and must still diff cleanly."""

    def test_union_with_missing_sides(self):
        rows = bench_compare.compare_memory(
            {"a:peak_rss_bytes": 1.0}, {"b:peak_rss_bytes": 2.0}
        )
        assert rows == [
            ("a:peak_rss_bytes", 1.0, None),
            ("b:peak_rss_bytes", None, 2.0),
        ]

    def test_old_artefact_without_memory_prints_na(
        self, result_dirs, capsys
    ):
        # baseline predates the memory fields; candidate has them
        old, new = result_dirs
        _write_results(
            new,
            "store_gate",
            {"elapsed_s": 5.0},
            memory={"peak_rss_bytes": 2.0e8},
        )
        _write_results(old, "store_gate", {"elapsed_s": 5.0})
        assert bench_compare.main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "memory (peak RSS" in out
        assert "n/a" in out

    def test_memory_growth_is_not_a_regression(self, result_dirs):
        old, new = result_dirs
        _write_results(
            old, "gate", {"x": 1.0}, memory={"peak_rss_bytes": 1.0e8}
        )
        _write_results(
            new, "gate", {"x": 1.0}, memory={"peak_rss_bytes": 9.0e8}
        )
        assert bench_compare.main([str(old), str(new), "--threshold", "0.5"]) == 0

    def test_json_memory_section(self, result_dirs, tmp_path):
        old, new = result_dirs
        _write_results(
            new, "gate", {"x": 1.0}, memory={"peak_rss_bytes": 2.0e8}
        )
        out = tmp_path / "diff.json"
        assert bench_compare.main([str(old), str(new), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        rows = {row["metric"]: row for row in payload["memory"]}
        assert rows["gate:peak_rss_bytes"]["baseline"] is None
        assert rows["gate:peak_rss_bytes"]["candidate"] == pytest.approx(2.0e8)


class TestLedgerDiff:
    def test_load_ledger_scalars_latest_wins(self, tmp_path):
        _write_ledger(tmp_path, {"e2": {"flips": 30.0}})
        with open(tmp_path / "ledger.jsonl", "a") as fh:
            fh.write(
                json.dumps({"experiment": "e2", "scalars": {"flips": 32.0}})
                + "\n"
            )
            fh.write("not json\n")  # malformed lines are skipped
        assert bench_compare.load_ledger_scalars(tmp_path) == {"e2.flips": 32.0}

    def test_no_ledgers_is_empty(self, tmp_path):
        assert bench_compare.load_ledger_scalars(tmp_path) == {}

    def test_ledger_diff_is_informational(self, result_dirs, tmp_path, capsys):
        # a huge ledger-scalar swing must not flip the exit status
        old, new = result_dirs
        _write_ledger(old, {"e2": {"flips": 10.0}})
        _write_ledger(new, {"e2": {"flips": 100.0}})
        out = tmp_path / "diff.json"
        code = bench_compare.main(
            [str(old), str(new), "--threshold", "0.5", "--json", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "ledger scalars" in printed and "e2.flips" in printed
        payload = json.loads(out.read_text())
        ledger = {row["metric"]: row for row in payload["ledger"]}
        assert ledger["e2.flips"]["change"] == pytest.approx(9.0)
        assert payload["regressions"] == []


def _write_histogram_artefact(path, name, values, histograms):
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.json").write_text(
        json.dumps({"name": name, "values": values, "histograms": histograms})
    )


class TestHistogramDiff:
    def test_load_histograms_flattens_quantiles(self, tmp_path):
        d = tmp_path / "results"
        _write_histogram_artefact(
            d,
            "bench",
            {"time_s": 1.0},
            {"batch.block_s": {"count": 8.0, "p50": 0.002, "p99": 0.005}},
        )
        assert bench_compare.load_histograms(d) == {
            "bench:batch.block_s.p50": 0.002,
            "bench:batch.block_s.p99": 0.005,
        }

    def test_missing_path_contributes_nothing(self, tmp_path):
        assert bench_compare.load_histograms(tmp_path / "nope") == {}

    def test_older_artefact_without_section_prints_na(self, tmp_path, capsys):
        """A baseline predating the histograms section must diff cleanly:
        n/a on its side, exit 0, never a KeyError."""
        old = tmp_path / "baseline"
        new = tmp_path / "candidate"
        _write_results(old, "bench", {"time_s": 1.0})
        _write_histogram_artefact(
            new,
            "bench",
            {"time_s": 1.0},
            {"batch.block_s": {"p50": 0.002, "p99": 0.005}},
        )
        out = tmp_path / "diff.json"
        code = bench_compare.main([str(old), str(new), "--json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "latency histograms" in printed
        assert "n/a" in printed
        payload = json.loads(out.read_text())
        rows = {row["metric"]: row for row in payload["histograms"]}
        assert rows["bench:batch.block_s.p99"]["baseline"] is None
        assert rows["bench:batch.block_s.p99"]["candidate"] == 0.005

    def test_histogram_swing_never_gates(self, tmp_path, capsys):
        old = tmp_path / "baseline"
        new = tmp_path / "candidate"
        _write_histogram_artefact(
            old, "bench", {"time_s": 1.0}, {"m": {"p50": 0.001, "p99": 0.002}}
        )
        _write_histogram_artefact(
            new, "bench", {"time_s": 1.0}, {"m": {"p50": 0.1, "p99": 0.2}}
        )
        code = bench_compare.main([str(old), str(new)])
        assert code == 0  # a 100x p99 swing is informational, not a gate
        assert "+9900.0%" in capsys.readouterr().out


class TestTolerantChange:
    """The shared n/a helper both optional sections diff through."""

    def test_missing_side_is_none(self):
        assert bench_compare.tolerant_change(None, 2.0) is None
        assert bench_compare.tolerant_change(1.0, None) is None
        assert bench_compare.tolerant_change(None, None) is None

    def test_zero_baseline_is_none_never_zero_division(self):
        assert bench_compare.tolerant_change(0.0, 5.0) is None

    def test_relative_change(self):
        assert bench_compare.tolerant_change(2.0, 3.0) == pytest.approx(0.5)
        assert bench_compare.tolerant_change(2.0, 1.0) == pytest.approx(-0.5)


class TestGateFlag:
    """--gate promotes the memory and histogram sections to gating."""

    def _memory_pair(self, tmp_path, old_rss, new_rss):
        old = tmp_path / "baseline"
        new = tmp_path / "candidate"
        _write_results(
            old, "gate", {"x": 1.0}, memory={"peak_rss_bytes": old_rss}
        )
        _write_results(
            new, "gate", {"x": 1.0}, memory={"peak_rss_bytes": new_rss}
        )
        return old, new

    def test_memory_growth_gates_exit_one(self, tmp_path, capsys):
        old, new = self._memory_pair(tmp_path, 1.0e8, 9.0e8)
        code = bench_compare.main(
            [str(old), str(new), "--threshold", "0.5", "--gate"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "gated" in out  # the section announces its mode

    def test_memory_within_threshold_exits_zero(self, tmp_path, capsys):
        old, new = self._memory_pair(tmp_path, 1.0e8, 1.2e8)
        code = bench_compare.main(
            [str(old), str(new), "--threshold", "0.5", "--gate"]
        )
        assert code == 0

    def test_histogram_swing_gates_exit_one(self, tmp_path, capsys):
        old = tmp_path / "baseline"
        new = tmp_path / "candidate"
        _write_histogram_artefact(
            old, "bench", {"time_s": 1.0}, {"m": {"p50": 0.001, "p99": 0.002}}
        )
        _write_histogram_artefact(
            new, "bench", {"time_s": 1.0}, {"m": {"p50": 0.1, "p99": 0.2}}
        )
        code = bench_compare.main([str(old), str(new), "--gate"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_na_rows_never_gate(self, tmp_path, capsys):
        """A side missing the section entirely stays n/a — even gated,
        absence is not a regression."""
        old = tmp_path / "baseline"
        new = tmp_path / "candidate"
        _write_results(old, "gate", {"x": 1.0})
        _write_results(
            new, "gate", {"x": 1.0}, memory={"peak_rss_bytes": 9.0e8}
        )
        code = bench_compare.main([str(old), str(new), "--gate"])
        assert code == 0
        assert "n/a" in capsys.readouterr().out

    def test_json_records_gate_and_section_regressions(
        self, tmp_path, capsys
    ):
        old, new = self._memory_pair(tmp_path, 1.0e8, 9.0e8)
        out = tmp_path / "diff.json"
        code = bench_compare.main(
            [str(old), str(new), "--threshold", "0.5", "--gate",
             "--json", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["gate"] is True
        assert payload["regressions"] == ["gate:peak_rss_bytes"]
        rows = {row["metric"]: row for row in payload["memory"]}
        assert rows["gate:peak_rss_bytes"]["regression"] is True
        assert rows["gate:peak_rss_bytes"]["change"] == pytest.approx(8.0)

    def test_without_gate_same_swing_stays_informational(
        self, tmp_path, capsys
    ):
        old, new = self._memory_pair(tmp_path, 1.0e8, 9.0e8)
        code = bench_compare.main([str(old), str(new), "--threshold", "0.5"])
        assert code == 0
        assert "informational" in capsys.readouterr().out


def _write_service_artefact(path, name, values, service_metrics):
    path.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": name,
        "values": values,
        "service": {"format": 1, "metrics": service_metrics},
    }
    (path / f"{name}.json").write_text(json.dumps(payload))


class TestServiceSection:
    def test_load_service_metrics_flattens(self, tmp_path):
        _write_service_artefact(
            tmp_path, "loadgen", {"auth_per_s": 9000.0},
            {"auth.p99_ms": 1.2, "auth.availability": 1.0, "note": "x"},
        )
        metrics = bench_compare.load_service_metrics(tmp_path)
        assert metrics == {
            "loadgen:auth.p99_ms": 1.2,
            "loadgen:auth.availability": 1.0,
        }

    def test_artefact_without_section_contributes_nothing(self, tmp_path):
        _write_results(tmp_path / "plain", "bench", {"time_s": 1.0})
        assert bench_compare.load_service_metrics(tmp_path / "plain") == {}

    def test_one_sided_service_renders_na(self, result_dirs, capsys):
        old, new = result_dirs
        _write_service_artefact(
            new, "loadgen", {"auth_per_s": 9000.0}, {"auth.p99_ms": 1.2}
        )
        code = bench_compare.main([str(old), str(new)])
        out = capsys.readouterr().out
        assert code == 0
        assert "service RED metrics" in out
        line = next(l for l in out.splitlines() if "auth.p99_ms" in l)
        assert "n/a" in line

    def test_service_swing_never_gates(self, result_dirs, capsys):
        """Even --gate must not flag service metrics: the map mixes
        bigger-is-better rates with smaller-is-better latencies."""
        old, new = result_dirs
        _write_service_artefact(
            old, "loadgen", {"auth_per_s": 9000.0}, {"auth.p99_ms": 1.0}
        )
        _write_service_artefact(
            new, "loadgen", {"auth_per_s": 9000.0}, {"auth.p99_ms": 100.0}
        )
        code = bench_compare.main([str(old), str(new), "--gate"])
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "auth.p99_ms" in l)
        assert "REGRESSION" not in line
        assert code == 0

    def test_json_service_section(self, result_dirs, tmp_path, capsys):
        old, new = result_dirs
        _write_service_artefact(
            old, "loadgen", {"auth_per_s": 1.0}, {"auth.p99_ms": 1.0}
        )
        _write_service_artefact(
            new, "loadgen", {"auth_per_s": 1.0}, {"auth.p99_ms": 2.0}
        )
        out_json = tmp_path / "diff.json"
        bench_compare.main([str(old), str(new), "--json", str(out_json)])
        payload = json.loads(out_json.read_text())
        (row,) = payload["service"]
        assert row["metric"] == "loadgen:auth.p99_ms"
        assert row["change"] == pytest.approx(1.0)
