"""tools/validate_metrics.py: the CI smoke validator's contract."""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import main as cli_main

_SPEC = importlib.util.spec_from_file_location(
    "validate_metrics",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "validate_metrics.py",
)
validate_metrics = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(validate_metrics)


@pytest.fixture(scope="module")
def metrics_file(tmp_path_factory):
    """A real artefact, produced exactly the way CI's smoke step does."""
    path = tmp_path_factory.mktemp("metrics") / "m.json"
    code = cli_main(
        ["run", "e2", "--chips", "3", "--ros", "16", "--metrics-out", str(path)]
    )
    assert code == 0
    return path


class TestValidatePayload:
    def test_real_artefact_is_clean(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        assert validate_metrics.validate_payload(payload) == []

    def test_missing_manifest_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        del payload["manifest"]
        assert any(
            "manifest" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_bad_span_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        payload["spans"][0]["duration_ns"] = -1
        assert any(
            "duration_ns" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_non_numeric_counter_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        payload["counters"]["bogus"] = "three"
        assert any(
            "bogus" in p for p in validate_metrics.validate_payload(payload)
        )


class TestMain:
    def test_valid_file_exit_zero(self, metrics_file, capsys):
        assert validate_metrics.main([str(metrics_file)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_json_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{{{")
        assert validate_metrics.main([str(bad)]) == 1

    def test_missing_file_exit_one(self, tmp_path, capsys):
        assert validate_metrics.main([str(tmp_path / "nope.json")]) == 1

    def test_schema_violation_exit_one(self, metrics_file, tmp_path, capsys):
        payload = json.loads(metrics_file.read_text())
        payload["manifest"].pop("seed")
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(payload))
        assert validate_metrics.main([str(broken)]) == 1
        assert "seed" in capsys.readouterr().err
