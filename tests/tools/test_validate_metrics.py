"""tools/validate_metrics.py: the CI smoke validator's contract."""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import main as cli_main

_SPEC = importlib.util.spec_from_file_location(
    "validate_metrics",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "validate_metrics.py",
)
validate_metrics = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(validate_metrics)


@pytest.fixture(scope="module")
def metrics_file(tmp_path_factory):
    """A real artefact, produced exactly the way CI's smoke step does."""
    path = tmp_path_factory.mktemp("metrics") / "m.json"
    code = cli_main(
        ["run", "e2", "--chips", "3", "--ros", "16", "--metrics-out", str(path)]
    )
    assert code == 0
    return path


class TestValidatePayload:
    def test_real_artefact_is_clean(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        assert validate_metrics.validate_payload(payload) == []

    def test_missing_manifest_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        del payload["manifest"]
        assert any(
            "manifest" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_bad_span_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        payload["spans"][0]["duration_ns"] = -1
        assert any(
            "duration_ns" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_non_numeric_counter_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        payload["counters"]["bogus"] = "three"
        assert any(
            "bogus" in p for p in validate_metrics.validate_payload(payload)
        )


class TestMain:
    def test_valid_file_exit_zero(self, metrics_file, capsys):
        assert validate_metrics.main([str(metrics_file)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_json_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{{{")
        assert validate_metrics.main([str(bad)]) == 1

    def test_missing_file_exit_one(self, tmp_path, capsys):
        assert validate_metrics.main([str(tmp_path / "nope.json")]) == 1

    def test_schema_violation_exit_one(self, metrics_file, tmp_path, capsys):
        payload = json.loads(metrics_file.read_text())
        payload["manifest"].pop("seed")
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(payload))
        assert validate_metrics.main([str(broken)]) == 1
        assert "seed" in capsys.readouterr().err


class TestExecutionFields:
    """The optional manifest jobs / cache fields (parallel + cache PR)."""

    @pytest.fixture
    def payload(self, metrics_file):
        return json.loads(metrics_file.read_text())

    def test_jobs_and_cache_accepted(self, payload):
        payload["manifest"]["jobs"] = 4
        payload["manifest"]["cache"] = {
            "dir": "/tmp/cache",
            "hits": ["e2"],
            "misses": ["e3"],
        }
        assert validate_metrics.validate_payload(payload) == []

    def test_absent_fields_accepted(self, payload):
        """Older manifests without jobs/cache stay valid."""
        payload["manifest"].pop("jobs", None)
        payload["manifest"].pop("cache", None)
        assert validate_metrics.validate_payload(payload) == []

    def test_non_positive_jobs_flagged(self, payload):
        payload["manifest"]["jobs"] = 0
        assert any(
            "jobs" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_wrong_type_jobs_flagged(self, payload):
        payload["manifest"]["jobs"] = "four"
        assert any(
            "jobs" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_cache_missing_dir_flagged(self, payload):
        payload["manifest"]["cache"] = {"hits": [], "misses": []}
        assert any(
            "dir" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_cache_bad_hit_list_flagged(self, payload):
        payload["manifest"]["cache"] = {
            "dir": "/tmp/c",
            "hits": [1, 2],
            "misses": [],
        }
        assert any(
            "hits" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_cli_artefact_with_cache_validates(self, tmp_path, capsys):
        """End to end: a real --cache --jobs artefact passes the tool."""
        out = tmp_path / "m.json"
        code = cli_main(
            [
                "run", "e3", "--chips", "4", "--ros", "16", "--jobs", "2",
                "--cache", str(tmp_path / "cache"), "--metrics-out", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert validate_metrics.main([str(out)]) == 0
        report = capsys.readouterr().out
        assert "jobs=2" in report
        assert "0 hit(s) / 1 miss(es)" in report


class TestStoreFields:
    """The optional manifest store / block_size / peak_rss_bytes fields
    (out-of-core store PR)."""

    @pytest.fixture
    def payload(self, metrics_file):
        return json.loads(metrics_file.read_text())

    def test_store_fields_accepted(self, payload):
        payload["manifest"]["store"] = "mmap"
        payload["manifest"]["block_size"] = 2000
        payload["manifest"]["peak_rss_bytes"] = 209_000_000
        assert validate_metrics.validate_payload(payload) == []

    def test_absent_fields_accepted(self, payload):
        """Older manifests without store fields stay valid."""
        for key in ("store", "block_size", "peak_rss_bytes"):
            payload["manifest"].pop(key, None)
        assert validate_metrics.validate_payload(payload) == []

    def test_unknown_store_flagged(self, payload):
        payload["manifest"]["store"] = "tape"
        assert any(
            "store" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_non_positive_block_size_flagged(self, payload):
        payload["manifest"]["block_size"] = 0
        assert any(
            "block_size" in p
            for p in validate_metrics.validate_payload(payload)
        )

    def test_negative_peak_rss_flagged(self, payload):
        payload["manifest"]["peak_rss_bytes"] = -1
        assert any(
            "peak_rss_bytes" in p
            for p in validate_metrics.validate_payload(payload)
        )

    def test_non_finite_peak_rss_flagged(self, payload):
        payload["manifest"]["peak_rss_bytes"] = float("nan")
        assert any(
            "peak_rss_bytes" in p
            for p in validate_metrics.validate_payload(payload)
        )

    def test_cli_mmap_artefact_validates(self, tmp_path, capsys):
        """End to end: a real --store mmap artefact passes the tool."""
        out = tmp_path / "m.json"
        code = cli_main(
            [
                "run", "e2", "--chips", "4", "--ros", "16",
                "--store", "mmap", "--block-size", "3",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        manifest = json.loads(out.read_text())["manifest"]
        assert manifest["store"] == "mmap"
        assert manifest["block_size"] == 3
        assert manifest["peak_rss_bytes"] > 0
        capsys.readouterr()
        assert validate_metrics.main([str(out)]) == 0
        report = capsys.readouterr().out
        assert "store=mmap" in report
        assert "block_size=3" in report
        assert "peak_rss=" in report


@pytest.fixture(scope="module")
def explain_artifacts(tmp_path_factory):
    """Real explain + ledger artefacts, produced the way CI's smoke does."""
    root = tmp_path_factory.mktemp("explain")
    json_path = root / "explain.json"
    ledger_path = root / "ledger.jsonl"
    code = cli_main(
        ["explain", "--chips", "3", "--ros", "16", "--seed", "3",
         "--json", str(json_path), "--ledger", str(ledger_path)]
    )
    assert code == 0
    return json_path, ledger_path


class TestValidateLedger:
    def _entries(self, path):
        return [json.loads(l) for l in path.read_text().splitlines()]

    def test_real_ledger_is_clean(self, explain_artifacts):
        _, ledger = explain_artifacts
        assert validate_metrics.validate_ledger_entries(self._entries(ledger)) == []

    def test_non_finite_scalar_flagged(self, explain_artifacts):
        _, ledger = explain_artifacts
        entries = self._entries(ledger)
        entries[0]["scalars"]["ro-puf.margin_p5_pct"] = float("nan")
        problems = validate_metrics.validate_ledger_entries(entries)
        assert any("not finite" in p for p in problems)

    def test_missing_e13_field_flagged(self, explain_artifacts):
        """The ledger drops NaN/inf on write, so absence is the symptom."""
        _, ledger = explain_artifacts
        entries = self._entries(ledger)
        del entries[0]["scalars"]["aro-puf.forecast_recall"]
        problems = validate_metrics.validate_ledger_entries(entries)
        assert any("aro-puf.forecast_recall" in p for p in problems)

    def test_out_of_range_recall_flagged(self, explain_artifacts):
        _, ledger = explain_artifacts
        entries = self._entries(ledger)
        entries[0]["scalars"]["ro-puf.forecast_recall"] = 1.7
        problems = validate_metrics.validate_ledger_entries(entries)
        assert any("outside [0, 1]" in p for p in problems)

    def test_non_e13_entries_only_need_finite_scalars(self):
        entries = [{"experiment": "e2", "scalars": {"x": 1.0}}]
        assert validate_metrics.validate_ledger_entries(entries) == []

    def test_main_ledger_mode(self, explain_artifacts, capsys):
        _, ledger = explain_artifacts
        assert validate_metrics.main(["--ledger", str(ledger)]) == 0
        assert "ledger" in capsys.readouterr().out


class TestValidateExplain:
    def test_real_payload_is_clean(self, explain_artifacts):
        json_path, _ = explain_artifacts
        payload = json.loads(json_path.read_text())
        assert validate_metrics.validate_explain_payload(payload) == []

    def test_wrong_format_flagged(self, explain_artifacts):
        json_path, _ = explain_artifacts
        payload = json.loads(json_path.read_text())
        payload["format"] = 99
        problems = validate_metrics.validate_explain_payload(payload)
        assert any("format" in p for p in problems)

    def test_non_finite_forecast_flagged(self, explain_artifacts):
        json_path, _ = explain_artifacts
        payload = json.loads(json_path.read_text())
        del payload["designs"]["ro-puf"]["forecast"]["recall"]
        problems = validate_metrics.validate_explain_payload(payload)
        assert any("forecast.recall" in p for p in problems)

    def test_histogram_bin_mismatch_flagged(self, explain_artifacts):
        json_path, _ = explain_artifacts
        payload = json.loads(json_path.read_text())
        hist = payload["designs"]["aro-puf"]["histogram"]
        first = next(iter(hist["counts"]))
        hist["counts"][first] = hist["counts"][first][:-1]
        problems = validate_metrics.validate_explain_payload(payload)
        assert any("bins" in p for p in problems)

    def test_missing_designs_flagged(self):
        problems = validate_metrics.validate_explain_payload(
            {"format": 1, "kind": "explain", "config": {}}
        )
        assert any("designs" in p for p in problems)

    def test_main_explain_mode(self, explain_artifacts, capsys):
        json_path, _ = explain_artifacts
        assert validate_metrics.main(["--explain", str(json_path)]) == 0
        assert "2 design(s)" in capsys.readouterr().out

    def test_main_explain_mode_rejects_metrics_payload(
        self, metrics_file, capsys
    ):
        assert validate_metrics.main(["--explain", str(metrics_file)]) == 1


class TestHistogramSection:
    def test_missing_histograms_section_flagged(self, metrics_file):
        payload = json.loads(metrics_file.read_text())
        del payload["histograms"]
        assert any(
            "histograms" in p for p in validate_metrics.validate_payload(payload)
        )

    def _payload_with_hist(self, metrics_file, hist):
        payload = json.loads(metrics_file.read_text())
        payload["histograms"] = {"batch.block_s": hist}
        return payload

    def test_well_formed_histogram_clean(self, metrics_file):
        from repro.telemetry import Histogram

        h = Histogram()
        h.observe_many([0.001, 0.002, 0.0])
        payload = self._payload_with_hist(
            metrics_file, json.loads(json.dumps(h.to_dict()))
        )
        assert validate_metrics.validate_payload(payload) == []

    def test_growth_mismatch_flagged(self, metrics_file):
        payload = self._payload_with_hist(
            metrics_file,
            {"growth": 2.0, "count": 1, "zero": 0, "buckets": {"0": 1}},
        )
        assert any(
            "growth" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_count_invariant_flagged(self, metrics_file):
        from repro.telemetry import GROWTH

        payload = self._payload_with_hist(
            metrics_file,
            {"growth": GROWTH, "count": 5, "zero": 0, "buckets": {"0": 1}},
        )
        assert any(
            "!= count" in p for p in validate_metrics.validate_payload(payload)
        )

    def test_boolean_count_flagged(self, metrics_file):
        from repro.telemetry import GROWTH

        payload = self._payload_with_hist(
            metrics_file,
            {"growth": GROWTH, "count": True, "zero": 0, "buckets": {}},
        )
        assert any(
            "count" in p for p in validate_metrics.validate_payload(payload)
        )


class TestTraceMode:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        """A real --trace-out artefact from a jobs=2 sweep."""
        path = tmp_path_factory.mktemp("trace") / "run.trace.json"
        code = cli_main(
            [
                "run", "e2", "--chips", "4", "--ros", "16",
                "--jobs", "2", "--trace-out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_real_trace_is_clean(self, trace_file, capsys):
        assert validate_metrics.main(["--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace event(s)" in out and "lane(s)" in out

    def test_real_trace_has_worker_lanes(self, trace_file):
        payload = json.loads(trace_file.read_text())
        assert validate_metrics.validate_trace_events(payload) == []
        assert validate_metrics._trace_lanes(payload) >= 3  # main + 2 workers

    def test_empty_trace_flagged(self, tmp_path, capsys):
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert validate_metrics.main(["--trace", str(bad)]) == 1
        assert "traceEvents" in capsys.readouterr().err

    def test_negative_duration_flagged(self, trace_file, tmp_path, capsys):
        payload = json.loads(trace_file.read_text())
        slice_event = next(
            e for e in payload["traceEvents"] if e["ph"] == "X"
        )
        slice_event["dur"] = -1.0
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(payload))
        assert validate_metrics.main(["--trace", str(broken)]) == 1
        assert "dur" in capsys.readouterr().err

    def test_missing_tid_flagged(self, trace_file):
        payload = json.loads(trace_file.read_text())
        del payload["traceEvents"][0]["tid"]
        assert any(
            "tid" in p
            for p in validate_metrics.validate_trace_events(payload)
        )


class TestFlameMode:
    @pytest.fixture(scope="class")
    def flame_file(self, tmp_path_factory):
        """A real collapsed-stack artefact via run --trace-out -> perf flame."""
        root = tmp_path_factory.mktemp("flame")
        trace = root / "run.trace.json"
        assert (
            cli_main(
                ["run", "e2", "--chips", "3", "--ros", "16",
                 "--trace-out", str(trace)]
            )
            == 0
        )
        out = root / "flame.txt"
        assert (
            cli_main(
                ["perf", "flame", "--trace", str(trace), "--out", str(out)]
            )
            == 0
        )
        return out

    def test_real_flame_output_is_clean(self, flame_file, capsys):
        assert validate_metrics.main(["--flame", str(flame_file)]) == 0
        assert "collapsed stack(s)" in capsys.readouterr().out

    def test_real_flame_output_has_lane_prefixed_frames(self, flame_file):
        lines = flame_file.read_text().splitlines()
        assert lines
        assert all(
            line.rsplit(" ", 1)[0].startswith("coordinator;")
            for line in lines
        )

    def test_missing_weight_flagged(self, tmp_path, capsys):
        bad = tmp_path / "f.txt"
        bad.write_text("just-one-token\n")
        assert validate_metrics.main(["--flame", str(bad)]) == 1
        assert "stack weight" in capsys.readouterr().err

    def test_zero_and_non_integer_weights_flagged(self):
        problems = validate_metrics.validate_collapsed_stacks(
            "lane;a 0\nlane;b 1.5\nlane;c -3\n"
        )
        assert len(problems) == 3
        assert all("positive integer" in p for p in problems)

    def test_empty_frame_flagged(self):
        problems = validate_metrics.validate_collapsed_stacks("lane;;x 5\n")
        assert any("empty frame" in p for p in problems)

    def test_empty_file_flagged(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert validate_metrics.main(["--flame", str(empty)]) == 1
        assert "no collapsed stacks" in capsys.readouterr().err

    def test_blank_lines_tolerated(self):
        text = "lane;a 10\n\nlane;b 20\n"
        assert validate_metrics.validate_collapsed_stacks(text) == []

    def test_flame_mode_is_not_json_parsed(self, tmp_path):
        # collapsed stacks are plain text; '{' in a frame name must not
        # trip a JSON decode error
        f = tmp_path / "f.txt"
        f.write_text("lane;run{e2} 7\n")
        assert validate_metrics.main(["--flame", str(f)]) == 0


@pytest.fixture(scope="module")
def service_file(tmp_path_factory):
    """A real loadgen artefact, produced the way CI's smoke step does."""
    path = tmp_path_factory.mktemp("service") / "loadgen.json"
    code = cli_main(
        [
            "loadgen",
            "--chips", "2",
            "--requests", "40",
            "--concurrency", "2",
            "--out", str(path),
            "--slo-gate", "off",
        ]
    )
    assert code == 0
    return path


class TestServiceMode:
    def test_real_artefact_is_clean(self, service_file):
        payload = json.loads(service_file.read_text())
        assert validate_metrics.validate_service_payload(payload) == []

    def test_main_exit_zero_with_summary(self, service_file, capsys):
        assert validate_metrics.main(["--service", str(service_file)]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out
        assert "endpoint(s)" in out
        assert "slo worst status" in out

    def test_missing_service_section_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        del payload["service"]
        problems = validate_metrics.validate_service_payload(payload)
        assert any("service" in p for p in problems)

    def test_bad_red_endpoint_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        block = payload["service"]["red"]["endpoints"]["auth"]
        block["availability"] = 1.5
        block["requests"] = -3
        problems = validate_metrics.validate_service_payload(payload)
        assert any("availability" in p for p in problems)
        assert any("requests" in p for p in problems)

    def test_outcome_counts_must_sum_to_requests(self, service_file):
        payload = json.loads(service_file.read_text())
        payload["service"]["red"]["endpoints"]["auth"]["outcomes"]["ok"] += 1
        problems = validate_metrics.validate_service_payload(payload)
        assert any("outcome counts sum" in p for p in problems)

    def test_broken_duration_histogram_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        durations = payload["service"]["red"]["durations_ms"]
        site = next(iter(durations))
        durations[site]["count"] = -1
        problems = validate_metrics.validate_service_payload(payload)
        assert any(site in p for p in problems)

    def test_bad_slo_verdict_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        verdict = payload["service"]["slo"][0]
        verdict["status"] = "shrug"
        verdict["bound"] = "diagonal"
        problems = validate_metrics.validate_service_payload(payload)
        assert any("status" in p for p in problems)
        assert any("bound" in p for p in problems)

    def test_bad_request_sample_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        sample = payload["service"]["requests"][0]
        sample["duration_ms"] = float("nan")
        sample["trace_id"] = "abc"
        payload["service"]["requests"][0] = json.loads(
            json.dumps(sample).replace("NaN", "null")
        )
        problems = validate_metrics.validate_service_payload(payload)
        assert any("duration_ms" in p for p in problems)
        assert any("trace_id" in p for p in problems)

    def test_non_finite_metric_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        payload["service"]["metrics"]["auth.p99_ms"] = None
        problems = validate_metrics.validate_service_payload(payload)
        assert any("auth.p99_ms" in p for p in problems)

    def test_wrong_format_flagged(self, service_file):
        payload = json.loads(service_file.read_text())
        payload["service"]["format"] = 99
        problems = validate_metrics.validate_service_payload(payload)
        assert any("service.format" in p for p in problems)

    def test_invalid_file_exit_one(self, service_file, tmp_path, capsys):
        payload = json.loads(service_file.read_text())
        payload["service"]["slo"] = []
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert validate_metrics.main(["--service", str(bad)]) == 1
        assert "invalid:" in capsys.readouterr().err
