"""tools/check_anchors.py: the CI anchor gate's contract."""

import importlib.util
import pathlib

import pytest

from repro.telemetry import RunLedger, RunManifest

_SPEC = importlib.util.spec_from_file_location(
    "check_anchors_tool",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_anchors.py",
)
check_anchors_tool = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_anchors_tool)

#: every anchor's metric at its exact paper value, split by experiment
PAPER_PERFECT = {
    "e2": {
        "ro-puf.flips_at_10y_pct": 32.0,
        "aro-puf.flips_at_10y_pct": 7.7,
        "improvement_factor_10y": 4.16,
    },
    "e3": {
        "ro-puf.uniqueness_pct": 45.0,
        "aro-puf.uniqueness_pct": 49.67,
    },
    "e4": {"aro-puf.uniformity_pct": 50.0},
}


def write_ledger(path, scalars_by_experiment):
    manifest = RunManifest.collect(seed=1, config={"synthetic": True})
    ledger = RunLedger(path)
    for experiment, scalars in scalars_by_experiment.items():
        ledger.record(experiment, scalars, manifest)
    return path


class TestCheckAnchorsTool:
    def test_perfect_ledger_exits_zero(self, tmp_path, capsys):
        path = write_ledger(tmp_path / "ledger.jsonl", PAPER_PERFECT)
        assert check_anchors_tool.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "worst status: pass" in out

    def test_out_of_band_exits_one(self, tmp_path, capsys):
        bad = {k: dict(v) for k, v in PAPER_PERFECT.items()}
        bad["e2"]["aro-puf.flips_at_10y_pct"] = 31.0
        path = write_ledger(tmp_path / "ledger.jsonl", bad)
        assert check_anchors_tool.main([str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_warn_band_still_passes(self, tmp_path, capsys):
        warm = {k: dict(v) for k, v in PAPER_PERFECT.items()}
        # between tol_pass (2.5) and tol_fail (8.0) of the 45% anchor
        warm["e3"]["ro-puf.uniqueness_pct"] = 41.0
        path = write_ledger(tmp_path / "ledger.jsonl", warm)
        assert check_anchors_tool.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARN" in out and "worst status: warn" in out

    def test_latest_entry_wins(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        bad = {k: dict(v) for k, v in PAPER_PERFECT.items()}
        bad["e2"]["aro-puf.flips_at_10y_pct"] = 31.0
        write_ledger(path, bad)
        write_ledger(path, PAPER_PERFECT)  # appends newer, in-band entries
        assert check_anchors_tool.main([str(path)]) == 0

    def test_missing_metric_needs_require_all(self, tmp_path, capsys):
        path = write_ledger(
            tmp_path / "ledger.jsonl", {"e2": PAPER_PERFECT["e2"]}
        )
        assert check_anchors_tool.main([str(path)]) == 0
        assert check_anchors_tool.main([str(path), "--require-all"]) == 1

    def test_missing_ledger_is_usage_error(self, tmp_path, capsys):
        code = check_anchors_tool.main([str(tmp_path / "none.jsonl")])
        assert code == 2
        assert "no such ledger" in capsys.readouterr().err

    def test_empty_ledger_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert check_anchors_tool.main([str(path)]) == 2
        assert "no ledger entries" in capsys.readouterr().err
