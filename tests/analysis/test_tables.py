"""ASCII table rendering."""

import pytest

from repro.analysis import Series, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_column_count_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [1.2e-7], [3e6]])
        assert "0.123" in text
        assert "1.200e-07" in text
        assert "3.000e+06" in text

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        assert lines[2].index("|") == lines[3].index("|")


class TestFormatSeries:
    def make(self, name, ys):
        s = Series(name=name)
        for x, y in zip([1.0, 2.0], ys):
            s.add(x, y)
        return s

    def test_shared_axis(self):
        a = self.make("conv", [1.0, 2.0])
        b = self.make("aro", [0.5, 0.7])
        text = format_series([a, b], x_label="years", y_label="%")
        assert "conv (%)" in text and "aro (%)" in text
        assert "years" in text

    def test_mismatched_axes_rejected(self):
        a = self.make("conv", [1.0, 2.0])
        b = Series(name="aro")
        b.add(5.0, 1.0)
        with pytest.raises(ValueError, match="different x axis"):
            format_series([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series([])
