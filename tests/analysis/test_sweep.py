"""Sweep utilities."""

import numpy as np
import pytest

from repro.analysis import Series, geometric_spacing, sweep


class TestSeries:
    def test_add_and_rows(self):
        s = Series(name="t")
        s.add(1.0, 2.0, 0.1)
        s.add(2.0, 4.0)
        assert s.as_rows() == [(1.0, 2.0, 0.1), (2.0, 4.0, 0.0)]

    def test_y_at(self):
        s = Series(name="t")
        s.add(1.0, 10.0)
        s.add(10.0, 42.0)
        assert s.y_at(10.0) == 42.0

    def test_y_at_missing(self):
        s = Series(name="t")
        s.add(1.0, 10.0)
        with pytest.raises(KeyError, match="t"):
            s.y_at(3.0)


class TestSweep:
    def test_applies_function(self):
        s = sweep([1, 2, 3], lambda v: v**2, name="sq")
        assert s.y == [1.0, 4.0, 9.0]
        assert s.name == "sq"


class TestGeometricSpacing:
    def test_endpoints(self):
        vals = geometric_spacing(1e-8, 1e-2, 7)
        assert vals[0] == pytest.approx(1e-8)
        assert vals[-1] == pytest.approx(1e-2)
        assert len(vals) == 7

    def test_log_spaced(self):
        vals = geometric_spacing(1.0, 100.0, 3)
        assert vals[1] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_spacing(0.0, 1.0, 3)
        with pytest.raises(ValueError):
            geometric_spacing(1.0, 2.0, 1)
