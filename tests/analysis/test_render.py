"""Render functions: every experiment result serialises to a sane table."""

import pytest

from repro.analysis import (
    ExperimentConfig,
    aging_bitflips,
    duty_ablation,
    ecc_area_experiment,
    environmental_reliability,
    frequency_degradation,
    layout_ablation,
    randomness_experiment,
    uniqueness_experiment,
)
from repro.analysis.render import (
    PAPER,
    render_e1,
    render_e2,
    render_e3,
    render_e4,
    render_e5,
    render_e6,
    render_e7,
    render_e8,
)
from repro.ecc import standard_codes


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=4, n_ros=16, seed=13)


class TestRenderers:
    def test_e1(self, config):
        text = render_e1(frequency_degradation(config, years=(1.0, 10.0)))
        assert "E1" in text and "ro-puf" in text and "GHz" in text

    def test_e2_mentions_paper_anchor(self, config):
        text = render_e2(aging_bitflips(config, years=(1.0, 10.0)))
        assert f"paper {PAPER['conv_flips_10y']}" in text
        assert "10y endpoints" in text

    def test_e3_has_histogram(self, config):
        text = render_e3(uniqueness_experiment(config))
        assert "HD distribution histogram" in text
        assert "49.67" in text  # paper column

    def test_e4_has_battery(self, config):
        text = render_e4(randomness_experiment(config))
        assert "monobit" in text and "cumulative_sums" in text

    def test_e5_two_sweeps(self, config):
        res = environmental_reliability(
            config, temperatures_c=(25.0, 85.0), vdd_rel=(0.9, 1.1), votes=1
        )
        text = render_e5(res)
        assert "temperature" in text and "supply voltage" in text

    def test_e6_marks_infeasible(self):
        res = ecc_area_experiment(
            policies=(("hopeless", 0.49, 0.49),),
            bch_palette=standard_codes(max_m=6, max_t=4),
        )
        text = render_e6(res)
        assert "infeasible" in text

    def test_e6_ratio_column(self):
        res = ecc_area_experiment(
            policies=(("easy", 0.15, 0.05),),
            bch_palette=standard_codes(max_m=8, max_t=20),
        )
        text = render_e6(res)
        assert "x" in text.splitlines()[-1]

    def test_e7(self, config):
        text = render_e7(duty_ablation(config, duties=(1e-7, 1e-4)))
        assert "eval duty" in text and "parked static" in text
        assert "parked toggling" in text

    def test_e8(self, config):
        text = render_e8(layout_ablation(config, sys_multipliers=(0.0, 1.0)))
        assert "systematic" in text and "distant" in text
