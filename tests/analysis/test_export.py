"""CSV exporters."""

import csv

import pytest

from repro.analysis import (
    ExperimentConfig,
    aging_bitflips,
    duty_ablation,
    layout_ablation,
    masking_ablation,
    stage_ablation,
    uniqueness_experiment,
)
from repro.analysis.export import (
    export_e2,
    export_e3,
    export_e7,
    export_e8,
    export_e9,
    export_e12,
    export_series,
)
from repro.analysis.sweep import Series


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=4, n_ros=16, seed=31)


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExportSeries:
    def test_writes_aligned_columns(self, tmp_path):
        a = Series(name="a")
        b = Series(name="b")
        for x in (1.0, 2.0):
            a.add(x, x * 10)
            b.add(x, x * 20)
        path = export_series({"a": a, "b": b}, tmp_path / "out.csv", "t")
        rows = read_csv(path)
        assert rows[0] == ["t", "a", "b"]
        assert rows[1] == ["1.0", "10.0", "20.0"]

    def test_mismatched_axes_rejected(self, tmp_path):
        a = Series(name="a")
        a.add(1.0, 1.0)
        b = Series(name="b")
        b.add(2.0, 1.0)
        with pytest.raises(ValueError, match="different x axis"):
            export_series({"a": a, "b": b}, tmp_path / "out.csv")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series({}, tmp_path / "out.csv")


class TestExperimentExports:
    def test_e2(self, config, tmp_path):
        res = aging_bitflips(config, years=(1.0, 10.0))
        (path,) = export_e2(res, tmp_path)
        rows = read_csv(path)
        assert rows[0][0] == "years"
        assert len(rows) == 3  # header + 2 years

    def test_e3(self, config, tmp_path):
        res = uniqueness_experiment(config, bins=5)
        files = export_e3(res, tmp_path)
        assert len(files) == 2
        stats = read_csv(files[0])
        assert stats[0][0] == "design"
        hist = read_csv(files[1])
        assert len(hist) == 1 + 2 * 5  # header + both designs x bins

    def test_e7(self, config, tmp_path):
        res = duty_ablation(config, duties=(1e-7, 1e-4))
        files = export_e7(res, tmp_path)
        assert len(files) == 2
        policies = read_csv(files[1])
        assert any("recovery" in row[0] for row in policies[1:])

    def test_e8(self, config, tmp_path):
        res = layout_ablation(config, sys_multipliers=(0.0, 1.0))
        files = export_e8(res, tmp_path)
        sweep_rows = read_csv(files[0])
        assert sweep_rows[0][0] == "sigma_multiplier"

    def test_e9(self, config, tmp_path):
        res = masking_ablation(config, ks=(2, 4))
        (path,) = export_e9(res, tmp_path)
        rows = read_csv(path)
        assert len(rows) == 1 + 3  # header + 2 masking rows + ARO reference

    def test_e12(self, config, tmp_path):
        res = stage_ablation(config, stage_counts=(3, 5))
        (path,) = export_e12(res, tmp_path)
        rows = read_csv(path)
        assert len(rows) == 1 + 4  # header + 2 designs x 2 stage counts
