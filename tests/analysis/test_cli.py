"""Command-line runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "e2"])
        assert args.experiment == "e2"
        assert args.chips == 50
        assert args.ros == 256

    def test_unknown_experiment_exits_nonzero_with_message(self, capsys):
        code = main(["run", "e99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id 'e99'" in err
        assert "e2" in err  # the message lists the valid ids

    def test_unknown_report_experiment_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            # argparse still rejects ids outside its choices up front
            build_parser().parse_args(["report", "--experiments", "e99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_run_e2_small(self, capsys):
        code = main(["run", "e2", "--chips", "4", "--ros", "32", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E2: response bit flips" in out
        assert "ro-puf" in out and "aro-puf" in out

    def test_run_e3_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "e3.txt"
        code = main(
            ["run", "e3", "--chips", "4", "--ros", "32", "--out", str(out_file)]
        )
        assert code == 0
        assert "inter-chip Hamming distance" in out_file.read_text()

    def test_seed_changes_numbers(self, capsys):
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "1"])
        first = capsys.readouterr().out
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_seed_reproducible(self, capsys):
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        first = capsys.readouterr().out
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestTelemetryFlags:
    def test_trace_prints_span_tree_and_counters(self, capsys):
        code = main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment.e3" in out
        assert "fabricate.batch_study" in out
        assert "batch.corner_memo_misses" in out

    def test_trace_leaves_no_tracer_installed(self, capsys):
        from repro import telemetry

        main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        assert telemetry.active() is None

    def test_metrics_out_writes_valid_payload(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_manifest

        out = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "e2",
                "--chips",
                "3",
                "--ros",
                "16",
                "--seed",
                "11",
                "--metrics-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spans"], "expected recorded spans"
        assert payload["counters"].get("batch.response_passes", 0) > 0
        validate_manifest(payload["manifest"])
        assert payload["manifest"]["seed"] == 11
        assert payload["manifest"]["config"]["n_chips"] == 3

    def test_profile_records_span_memory(self, capsys):
        code = main(["run", "e3", "--chips", "3", "--ros", "16", "--profile"])
        assert code == 0
        assert "peak=" in capsys.readouterr().out

    def test_tables_unchanged_by_tracing(self, capsys):
        main(["run", "e3", "--chips", "3", "--ros", "16"])
        plain = capsys.readouterr().out
        main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        traced = capsys.readouterr().out
        assert traced.startswith(plain.rstrip("\n").split("\n")[0])
        assert plain.split("── telemetry")[0].strip() in traced

    def test_unknown_id_with_metrics_out_still_cleans_up(self, tmp_path, capsys):
        from repro import telemetry

        out = tmp_path / "m.json"
        code = main(["run", "e99", "--metrics-out", str(out)])
        assert code == 2
        assert telemetry.active() is None
