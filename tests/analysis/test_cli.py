"""Command-line runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "e2"])
        assert args.experiment == "e2"
        assert args.chips == 50
        assert args.ros == 256

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_run_e2_small(self, capsys):
        code = main(["run", "e2", "--chips", "4", "--ros", "32", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E2: response bit flips" in out
        assert "ro-puf" in out and "aro-puf" in out

    def test_run_e3_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "e3.txt"
        code = main(
            ["run", "e3", "--chips", "4", "--ros", "32", "--out", str(out_file)]
        )
        assert code == 0
        assert "inter-chip Hamming distance" in out_file.read_text()

    def test_seed_changes_numbers(self, capsys):
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "1"])
        first = capsys.readouterr().out
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_seed_reproducible(self, capsys):
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        first = capsys.readouterr().out
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second
