"""Command-line runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "e2"])
        assert args.experiment == "e2"
        assert args.chips == 50
        assert args.ros == 256

    def test_unknown_experiment_exits_nonzero_with_message(self, capsys):
        code = main(["run", "e99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id 'e99'" in err
        assert "e2" in err  # the message lists the valid ids

    def test_unknown_report_experiment_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            # argparse still rejects ids outside its choices up front
            build_parser().parse_args(["report", "--experiments", "e99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 14)}


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_run_e2_small(self, capsys):
        code = main(["run", "e2", "--chips", "4", "--ros", "32", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E2: response bit flips" in out
        assert "ro-puf" in out and "aro-puf" in out

    def test_run_e3_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "e3.txt"
        code = main(
            ["run", "e3", "--chips", "4", "--ros", "32", "--out", str(out_file)]
        )
        assert code == 0
        assert "inter-chip Hamming distance" in out_file.read_text()

    def test_seed_changes_numbers(self, capsys):
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "1"])
        first = capsys.readouterr().out
        main(["run", "e3", "--chips", "4", "--ros", "32", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_seed_reproducible(self, capsys):
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        first = capsys.readouterr().out
        main(["run", "e8", "--chips", "3", "--ros", "16", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestTelemetryFlags:
    def test_trace_prints_span_tree_and_counters(self, capsys):
        code = main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment.e3" in out
        assert "fabricate.batch_study" in out
        assert "batch.corner_memo_misses" in out

    def test_trace_leaves_no_tracer_installed(self, capsys):
        from repro import telemetry

        main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        assert telemetry.active() is None

    def test_metrics_out_writes_valid_payload(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_manifest

        out = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "e2",
                "--chips",
                "3",
                "--ros",
                "16",
                "--seed",
                "11",
                "--metrics-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spans"], "expected recorded spans"
        assert payload["counters"].get("batch.response_passes", 0) > 0
        validate_manifest(payload["manifest"])
        assert payload["manifest"]["seed"] == 11
        assert payload["manifest"]["config"]["n_chips"] == 3

    def test_profile_records_span_memory(self, capsys):
        code = main(["run", "e3", "--chips", "3", "--ros", "16", "--profile"])
        assert code == 0
        assert "peak=" in capsys.readouterr().out

    def test_tables_unchanged_by_tracing(self, capsys):
        main(["run", "e3", "--chips", "3", "--ros", "16"])
        plain = capsys.readouterr().out
        main(["run", "e3", "--chips", "3", "--ros", "16", "--trace"])
        traced = capsys.readouterr().out
        assert traced.startswith(plain.rstrip("\n").split("\n")[0])
        assert plain.split("── telemetry")[0].strip() in traced

    def test_unknown_id_with_metrics_out_still_cleans_up(self, tmp_path, capsys):
        from repro import telemetry

        out = tmp_path / "m.json"
        code = main(["run", "e99", "--metrics-out", str(out)])
        assert code == 2
        assert telemetry.active() is None

    def test_metrics_out_creates_parent_dirs(self, tmp_path, capsys):
        import json

        out = tmp_path / "deep" / "nested" / "metrics.json"
        code = main(
            ["run", "e3", "--chips", "3", "--ros", "16", "--metrics-out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert isinstance(payload["version"], str) and payload["version"]

    def test_out_creates_parent_dirs(self, tmp_path, capsys):
        out = tmp_path / "deep" / "nested" / "e3.txt"
        code = main(
            ["run", "e3", "--chips", "3", "--ros", "16", "--out", str(out)]
        )
        assert code == 0
        assert "inter-chip Hamming distance" in out.read_text()


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro.telemetry import package_version

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {package_version()}" in capsys.readouterr().out


class TestLedgerAndEvents:
    def test_run_appends_ledger_and_history_renders(self, tmp_path, capsys):
        from repro.telemetry import RunLedger

        ledger = tmp_path / "runs" / "ledger.jsonl"  # parent must be created
        for seed in ("1", "2"):
            code = main(
                [
                    "run",
                    "e2",
                    "--chips",
                    "4",
                    "--ros",
                    "32",
                    "--seed",
                    seed,
                    "--ledger",
                    str(ledger),
                ]
            )
            assert code == 0
        entries = RunLedger(ledger).entries()
        assert [e.experiment for e in entries] == ["e2", "e2"]
        assert entries[0].run_key() != entries[1].run_key()  # seeds differ
        assert "ro-puf.flips_at_10y_pct" in entries[0].scalars
        capsys.readouterr()

        assert main(["history", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "e2.ro-puf.flips_at_10y_pct" in out
        assert "latest" in out

    def test_history_metric_filter(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        main(["run", "e2", "--chips", "3", "--ros", "16", "--ledger", str(ledger)])
        capsys.readouterr()
        assert main(["history", "--ledger", str(ledger), "--metric", "aro-puf"]) == 0
        out = capsys.readouterr().out
        assert "e2.aro-puf.flips_at_10y_pct" in out
        assert "e2.ro-puf.flips_at_10y_pct" not in out

    def test_history_empty_ledger(self, tmp_path, capsys):
        assert main(["history", "--ledger", str(tmp_path / "none.jsonl")]) == 0
        assert "empty ledger" in capsys.readouterr().out

    def test_events_lifecycle_and_cleanup(self, tmp_path, capsys):
        import json

        from repro import telemetry

        events = tmp_path / "deep" / "events.jsonl"  # parent must be created
        code = main(
            ["run", "e2", "--chips", "3", "--ros", "16", "--events", str(events)]
        )
        assert code == 0
        assert telemetry.active_emitter() is None
        records = [json.loads(line) for line in events.read_text().splitlines()]
        assert records[0]["event"] == "run.start"
        assert records[0]["experiment"] == "e2"
        assert records[-1]["event"] == "run.end"

    def test_report_records_every_experiment(self, tmp_path, capsys):
        from repro.telemetry import RunLedger

        ledger = tmp_path / "ledger.jsonl"
        code = main(
            [
                "report",
                "--experiments",
                "e2",
                "e3",
                "--chips",
                "3",
                "--ros",
                "16",
                "--path",
                str(tmp_path / "REPORT.md"),
                "--ledger",
                str(ledger),
            ]
        )
        assert code == 0
        entries = RunLedger(ledger).entries()
        assert [e.experiment for e in entries] == ["e2", "e3"]
        # one CLI invocation -> one manifest -> one shared run key
        assert len({e.run_key() for e in entries}) == 1


class TestCheckAnchors:
    @staticmethod
    def synthetic_ledger(path, scalars_by_experiment):
        from repro.telemetry import RunLedger, RunManifest

        manifest = RunManifest.collect(seed=1, config={"synthetic": True})
        ledger = RunLedger(path)
        for experiment, scalars in scalars_by_experiment.items():
            ledger.record(experiment, scalars, manifest)
        return ledger

    PAPER_PERFECT = {
        "e2": {
            "ro-puf.flips_at_10y_pct": 32.0,
            "aro-puf.flips_at_10y_pct": 7.7,
            "improvement_factor_10y": 4.16,
        },
        "e3": {
            "ro-puf.uniqueness_pct": 45.0,
            "aro-puf.uniqueness_pct": 49.67,
        },
        "e4": {"aro-puf.uniformity_pct": 50.0},
    }

    def test_perfect_ledger_passes(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self.synthetic_ledger(ledger, self.PAPER_PERFECT)
        code = main(["check-anchors", "--from-ledger", str(ledger)])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst status: pass" in out

    def test_out_of_band_metric_fails(self, tmp_path, capsys):
        bad = {k: dict(v) for k, v in self.PAPER_PERFECT.items()}
        bad["e2"]["aro-puf.flips_at_10y_pct"] = 30.0  # conventional-like aging
        ledger = tmp_path / "ledger.jsonl"
        self.synthetic_ledger(ledger, bad)
        code = main(["check-anchors", "--from-ledger", str(ledger)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "aro-flips-10y" in out

    def test_missing_metrics_need_require_all(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self.synthetic_ledger(ledger, {"e2": self.PAPER_PERFECT["e2"]})
        assert main(["check-anchors", "--from-ledger", str(ledger)]) == 0
        assert (
            main(["check-anchors", "--from-ledger", str(ledger), "--require-all"])
            == 1
        )

    def test_perturbed_mission_fails_fresh_run(self, capsys):
        # a PUF evaluated 1% of the time ages like a conventional design:
        # the ARO flip-rate anchor must leave its band and fail the check
        code = main(
            ["check-anchors", "--chips", "4", "--ros", "16", "--eval-duty", "1e-2"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_fresh_run_records_to_ledger(self, tmp_path, capsys):
        from repro.telemetry import ANCHOR_EXPERIMENTS, RunLedger

        ledger = tmp_path / "ledger.jsonl"
        main(
            [
                "check-anchors",
                "--chips",
                "3",
                "--ros",
                "16",
                "--ledger",
                str(ledger),
            ]
        )
        entries = RunLedger(ledger).entries()
        assert [e.experiment for e in entries] == list(ANCHOR_EXPERIMENTS)


class TestParallelAndCache:
    """The --jobs and --cache execution flags."""

    SCALE = ["--chips", "5", "--ros", "16", "--seed", "3"]

    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["run", "e3", *self.SCALE]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "e3", *self.SCALE, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_zero_rejected_helpfully(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "e3", *self.SCALE, "--jobs", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_jobs_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "e3", *self.SCALE, "--jobs", "two"])
        assert "positive integer" in capsys.readouterr().err

    def test_jobs_recorded_in_manifest(self, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        main(["run", "e3", *self.SCALE, "--jobs", "2", "--metrics-out", str(out)])
        manifest = json.loads(out.read_text())["manifest"]
        assert manifest["jobs"] == 2
        assert manifest["cache"] is None
        # jobs must NOT leak into the ledger-digested config
        assert "jobs" not in manifest["config"]

    def test_cache_two_pass_hits_and_scalars_identical(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"
        argv = ["run", "e3", *self.SCALE, "--cache", str(cache_dir),
                "--ledger", str(ledger)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hit" not in first
        assert "0 hit(s), 1 miss(es)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit: e3" in second
        assert "1 hit(s), 0 miss(es)" in second
        entries = [json.loads(l) for l in ledger.read_text().splitlines()]
        assert len(entries) == 2
        assert entries[0]["scalars"] == entries[1]["scalars"]

    def test_cache_summary_in_manifest(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        argv = ["run", "e3", *self.SCALE, "--cache", str(cache_dir)]
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        main([*argv, "--metrics-out", str(m1)])
        main([*argv, "--metrics-out", str(m2)])
        capsys.readouterr()
        first = json.loads(m1.read_text())["manifest"]["cache"]
        second = json.loads(m2.read_text())["manifest"]["cache"]
        assert first == {"dir": str(cache_dir), "hits": [], "misses": ["e3"]}
        assert second == {"dir": str(cache_dir), "hits": ["e3"], "misses": []}

    def test_cache_hit_faithful_tables(self, tmp_path, capsys):
        """A hit renders the same table text the computing pass printed."""
        cache_dir = tmp_path / "cache"
        argv = ["run", "e3", *self.SCALE, "--cache", str(cache_dir)]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        table = first.split("\ncache:")[0]
        assert table in second

    def test_corrupted_cache_recomputes_with_warning(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["run", "e3", *self.SCALE, "--cache", str(cache_dir)]
        main(argv)
        capsys.readouterr()
        for pkl in cache_dir.glob("*.pkl"):
            pkl.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="unusable"):
            assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hit" not in out
        assert "inter-chip Hamming distance" in out

    def test_check_anchors_supports_cache(self, tmp_path, capsys):
        from repro.telemetry import ANCHOR_EXPERIMENTS

        cache_dir = tmp_path / "cache"
        argv = ["check-anchors", "--chips", "3", "--ros", "16",
                "--cache", str(cache_dir)]
        main(argv)
        capsys.readouterr()
        main(argv)
        out = capsys.readouterr().out
        for key in ANCHOR_EXPERIMENTS:
            assert f"cache hit: {key}" in out


class TestExplain:
    """The forensics `explain` subcommand."""

    SCALE = ["--chips", "4", "--ros", "16", "--seed", "3"]

    def test_prints_summary_and_bit_tables(self, capsys):
        assert main(["explain", *self.SCALE]) == 0
        out = capsys.readouterr().out
        assert "Margin forensics" in out
        assert "recall" in out
        assert "thinnest margins" in out
        assert "ro-puf" in out and "aro-puf" in out

    def test_single_design_filter(self, capsys):
        assert main(["explain", *self.SCALE, "--design", "aro-puf"]) == 0
        out = capsys.readouterr().out
        assert "aro-puf: chip" in out
        assert "\nro-puf: chip" not in out

    def test_json_export_schema(self, tmp_path, capsys):
        import json

        out = tmp_path / "explain.json"
        assert main(["explain", *self.SCALE, "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "explain"
        assert set(payload["designs"]) == {"ro-puf", "aro-puf"}
        for block in payload["designs"].values():
            assert 0.0 <= block["forecast"]["recall"] <= 1.0
            assert block["chip"]["bits"]

    def test_heatmap_per_design_suffixing(self, tmp_path, capsys):
        assert (
            main(["explain", *self.SCALE, "--heatmap", str(tmp_path / "m.ppm")])
            == 0
        )
        assert (tmp_path / "m-ro-puf.ppm").read_bytes().startswith(b"P6\n")
        assert (tmp_path / "m-aro-puf.ppm").read_bytes().startswith(b"P6\n")

    def test_heatmap_exact_path_for_single_design(self, tmp_path, capsys):
        assert (
            main(
                ["explain", *self.SCALE, "--design", "ro-puf",
                 "--heatmap", str(tmp_path / "m.ppm")]
            )
            == 0
        )
        assert (tmp_path / "m.ppm").exists()

    def test_ledger_records_e13(self, tmp_path, capsys):
        from repro.telemetry import RunLedger

        ledger = tmp_path / "ledger.jsonl"
        assert main(["explain", *self.SCALE, "--ledger", str(ledger)]) == 0
        entries = RunLedger(ledger).entries()
        assert [e.experiment for e in entries] == ["e13"]
        assert "aro-puf.forecast_recall" in entries[0].scalars

    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["explain", *self.SCALE]) == 0
        serial = capsys.readouterr().out
        assert main(["explain", *self.SCALE, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_run_e13_registered(self, capsys):
        assert main(["run", "e13", *self.SCALE]) == 0
        out = capsys.readouterr().out
        assert "Margin forensics" in out

    def test_no_collector_or_emitter_left_installed(self, capsys):
        from repro import telemetry
        from repro.forensics.hook import active_collector

        main(["explain", *self.SCALE])
        assert active_collector() is None
        assert telemetry.active_emitter() is None


class TestVersionIdentity:
    """--version carries the perf-ledger host identity."""

    def test_version_includes_numpy_and_platform_triple(self, capsys):
        import numpy

        from repro.telemetry import host_fingerprint, platform_triple

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"numpy {numpy.__version__}" in out
        assert platform_triple() in out
        assert f"host {host_fingerprint()}" in out


def synthetic_perf_ledger(path, series, bench="bench_x", metric="wall_s"):
    """Append one entry per value, all stamped with this host."""
    from repro.telemetry import PerfLedger

    ledger = PerfLedger(path)
    for value in series:
        ledger.record(bench, {metric: value})
    return ledger


class TestPerfGate:
    """The acceptance-criterion exit codes: an injected 20 % regression
    exits non-zero, jitter within the noise floor exits zero."""

    STABLE = [1.00, 1.01, 0.99, 1.00, 1.02, 1.01]

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(ledger, self.STABLE + [1.20])  # +20 % wall
        code = main(["perf", "gate", "--perf-ledger", str(ledger)])
        assert code == 1
        out = capsys.readouterr().out
        assert "<< REGRESSION" in out
        assert "bench_x:wall_s" in out
        assert "1 confirmed regression(s)" in out

    def test_jitter_within_noise_floor_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(ledger, self.STABLE + [1.015])  # ~1 % jitter
        code = main(["perf", "gate", "--perf-ledger", str(ledger)])
        assert code == 0
        assert "no confirmed regressions" in capsys.readouterr().out

    def test_throughput_drop_gates_and_improvement_does_not(
        self, tmp_path, capsys
    ):
        drop = tmp_path / "drop.jsonl"
        synthetic_perf_ledger(
            drop, [100.0, 101.0, 99.0, 100.0, 102.0, 101.0, 80.0],
            metric="chips_years_per_s",
        )
        assert main(["perf", "gate", "--perf-ledger", str(drop)]) == 1
        capsys.readouterr()
        rise = tmp_path / "rise.jsonl"
        synthetic_perf_ledger(
            rise, [100.0, 101.0, 99.0, 100.0, 102.0, 101.0, 130.0],
            metric="chips_years_per_s",
        )
        assert main(["perf", "gate", "--perf-ledger", str(rise)]) == 0
        assert "improve" in capsys.readouterr().out

    def test_three_run_ledger_never_fires(self, tmp_path, capsys):
        """Warm-up: too little history for a noise estimate, even with a
        huge apparent regression."""
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(ledger, [1.0, 1.0, 5.0])
        assert main(["perf", "gate", "--perf-ledger", str(ledger)]) == 0
        assert "warmup" in capsys.readouterr().out

    def test_unoriented_experiment_scalars_never_gate(self, tmp_path, capsys):
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(
            ledger, self.STABLE + [2.0], metric="flips_pct"
        )
        assert main(["perf", "gate", "--perf-ledger", str(ledger)]) == 0
        assert "shift" in capsys.readouterr().out

    def test_empty_ledger_exits_zero(self, tmp_path, capsys):
        code = main(
            ["perf", "gate", "--perf-ledger", str(tmp_path / "none.jsonl")]
        )
        assert code == 0
        assert "nothing to judge" in capsys.readouterr().out

    def test_host_filter_this_ignores_foreign_appends(self, tmp_path, capsys):
        """A laptop's regression must not fire a CI gate when the gate
        pins --host this."""
        import json as _json

        from repro.telemetry import PerfEntry

        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(ledger, self.STABLE + [1.0])
        foreign = PerfEntry(
            bench="bench_x", values={"wall_s": 9.9}, host="laptop-fp"
        )
        with open(ledger, "a") as fh:
            fh.write(_json.dumps(foreign.to_dict()) + "\n")
        assert (
            main(
                ["perf", "gate", "--perf-ledger", str(ledger),
                 "--host", "this"]
            )
            == 0
        )


class TestPerfHistory:
    def test_renders_sparkline_and_verdict(self, tmp_path, capsys):
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(
            ledger, [1.00, 1.01, 0.99, 1.00, 1.02, 1.01, 1.20]
        )
        assert main(["perf", "history", "--perf-ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "bench_x:wall_s" in out
        assert "[regress]" in out
        assert "vs median" in out

    def test_metric_filter(self, tmp_path, capsys):
        from repro.telemetry import PerfLedger

        ledger = PerfLedger(tmp_path / "perf.jsonl")
        ledger.record("bench_x", {"wall_s": 1.0, "peak_rss_bytes": 100.0})
        assert (
            main(
                ["perf", "history", "--perf-ledger", str(ledger.path),
                 "--metric", "rss"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "peak_rss_bytes" in out
        assert "wall_s" not in out

    def test_empty_ledger(self, tmp_path, capsys):
        assert (
            main(
                ["perf", "history", "--perf-ledger",
                 str(tmp_path / "none.jsonl")]
            )
            == 0
        )
        assert "empty perf ledger" in capsys.readouterr().out


class TestPerfFlame:
    def run_traced(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        assert (
            main(
                ["run", "e2", "--chips", "3", "--ros", "16",
                 "--trace-out", str(trace)]
            )
            == 0
        )
        capsys.readouterr()
        return trace

    def test_collapsed_output_validates(self, tmp_path, capsys):
        import sys as _sys

        _sys.path.insert(0, "tools")
        try:
            import validate_metrics
        finally:
            _sys.path.pop(0)
        trace = self.run_traced(tmp_path, capsys)
        out = tmp_path / "flame.txt"
        code = main(
            ["perf", "flame", "--trace", str(trace), "--out", str(out)]
        )
        assert code == 0
        assert "collapsed stacks written" in capsys.readouterr().out
        text = out.read_text()
        assert validate_metrics.validate_collapsed_stacks(text) == []
        assert any(
            line.startswith("coordinator;") for line in text.splitlines()
        )

    def test_stdout_mode_and_critical_path(self, tmp_path, capsys):
        trace = self.run_traced(tmp_path, capsys)
        code = main(
            ["perf", "flame", "--trace", str(trace), "--critical-path"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment.e2" in out
        assert "critical path" in out

    def test_missing_and_malformed_trace_exit_2(self, tmp_path, capsys):
        assert (
            main(["perf", "flame", "--trace", str(tmp_path / "no.json")])
            == 2
        )
        assert "no trace file" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["perf", "flame", "--trace", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err


class TestPerfReport:
    def test_writes_html_with_trends_and_attribution(self, tmp_path, capsys):
        ledger = tmp_path / "perf.jsonl"
        synthetic_perf_ledger(ledger, [1.0, 1.01, 0.99, 1.0, 1.02, 1.2])
        trace = tmp_path / "run.trace.json"
        main(
            ["run", "e2", "--chips", "3", "--ros", "16",
             "--trace-out", str(trace)]
        )
        capsys.readouterr()
        html_out = tmp_path / "perf.html"
        code = main(
            ["perf", "report", "--perf-ledger", str(ledger),
             "--html", str(html_out), "--trace", str(trace)]
        )
        assert code == 0
        text = html_out.read_text()
        assert "bench_x:wall_s" in text
        assert "Self-time attribution" in text
        assert "experiment.e2" in text


class TestMonitorTruncation:
    def test_follow_exits_cleanly_when_file_truncates(
        self, tmp_path, capsys, monkeypatch
    ):
        """A rotated/truncated events file must end the tail loop with
        exit 0, not hang at a stale offset forever."""
        import json as _json
        import time as _time

        events = tmp_path / "events.jsonl"
        lines = [
            {"format": 1, "event": "run.start", "experiment": "e2",
             "t": 0.0},
            {"format": 1, "event": "progress", "stage": "sweep", "done": 1,
             "total": 4, "t": 0.5},
        ]
        events.write_text(
            "".join(_json.dumps(line) + "\n" for line in lines)
        )

        def truncate_instead_of_sleeping(_seconds):
            events.write_text("")  # the run rotated the file under us

        monkeypatch.setattr(_time, "sleep", truncate_instead_of_sleeping)
        code = main(
            ["monitor", "--events", str(events), "--follow",
             "--interval", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "truncated; stopping" in out


class TestEmitterCleanupOnFailure:
    """Satellite audit: the emitter must be uninstalled (and its file
    flushed) no matter how the run ends."""

    def test_experiment_crash_flushes_events_and_uninstalls(
        self, tmp_path, capsys, monkeypatch
    ):
        import dataclasses
        import json

        from repro import cli, telemetry

        def boom(*args, **kwargs):
            raise RuntimeError("mid-run crash")

        monkeypatch.setitem(
            cli.EXPERIMENTS,
            "e2",
            dataclasses.replace(cli.EXPERIMENTS["e2"], run=boom),
        )
        events = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError, match="mid-run crash"):
            main(
                ["run", "e2", "--chips", "3", "--ros", "16",
                 "--events", str(events)]
            )
        assert telemetry.active_emitter() is None
        records = [json.loads(l) for l in events.read_text().splitlines()]
        assert records[0]["event"] == "run.start"
        assert records[-1]["event"] == "run.end"  # flushed by the finally

    def test_lifecycle_write_failure_still_uninstalls(
        self, tmp_path, capsys, monkeypatch
    ):
        """A raising run-end heartbeat must not leave the emitter stuck
        (a stuck emitter poisons every later install)."""
        from repro import telemetry

        def broken_lifecycle(self, event, **fields):
            raise OSError("disk full")

        monkeypatch.setattr(
            telemetry.ProgressEmitter, "lifecycle", broken_lifecycle
        )
        with pytest.raises(OSError, match="disk full"):
            main(
                ["run", "e3", "--chips", "3", "--ros", "16",
                 "--events", str(tmp_path / "events.jsonl")]
            )
        assert telemetry.active_emitter() is None
        # and the slot is immediately reusable
        telemetry.install_emitter(
            telemetry.ProgressEmitter(tmp_path / "again.jsonl")
        )
        telemetry.uninstall_emitter()


class TestServeAndLoadgen:
    """The fleet-service observatory: loadgen artefacts and SLO gating."""

    def _loadgen(self, *extra):
        return main(
            ["loadgen", "--chips", "2", "--requests", "30",
             "--concurrency", "2", "--seed", "3", "--slo-gate", "off",
             *extra]
        )

    def test_loadgen_smoke_writes_service_artefact(self, tmp_path, capsys):
        import json

        out = tmp_path / "loadgen.json"
        assert self._loadgen("--out", str(out)) == 0
        stdout = capsys.readouterr().out
        assert "loadgen: 30 requests" in stdout
        assert f"loadgen artefact written to {out}" in stdout
        payload = json.loads(out.read_text())
        assert payload["values"]["auth_per_s"] > 0
        service = payload["service"]
        auth = service["red"]["endpoints"]["auth"]
        assert auth["requests"] == 30
        assert 0.0 <= auth["availability"] <= 1.0
        assert service["metrics"]["auth.p99_ms"] >= 0.0

    def test_slo_gate_enforce_fails_on_injected_latency(self, capsys):
        """The ISSUE acceptance hook: a latency regression must turn the
        enforced gate into a non-zero exit."""
        code = main(
            ["loadgen", "--chips", "2", "--requests", "12",
             "--concurrency", "4", "--seed", "3",
             "--inject-latency-ms", "80", "--slo-gate", "enforce"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "slo worst status: fail (gate: enforce)" in out
        assert "auth-p99-latency" in out

    def test_slo_gate_informational_reports_without_failing(self, capsys):
        code = main(
            ["loadgen", "--chips", "2", "--requests", "12",
             "--concurrency", "4", "--seed", "3",
             "--inject-latency-ms", "80", "--slo-gate", "informational"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slo worst status: fail (gate: informational)" in out

    def test_bad_slo_spec_exits_two(self, tmp_path, capsys):
        spec = tmp_path / "slo.json"
        spec.write_text('{"not": "a spec"}')
        code = self._loadgen("--slo-spec", str(spec))
        assert code == 2
        assert "bad SLO spec" in capsys.readouterr().err

    def test_trace_out_parks_requests_on_recycled_lanes(
        self, tmp_path, capsys
    ):
        import json

        trace = tmp_path / "loadgen.trace.json"
        assert self._loadgen("--trace-out", str(trace)) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        req_tids = {
            tid for name, tid in lanes.items() if name.startswith("req-")
        }
        # two workers -> at most two recycled lanes, never one per request
        assert 1 <= len(req_tids) <= 2
        request_spans = [
            e for e in events
            if e["ph"] == "X" and e["name"].startswith("request.")
        ]
        # 30 load requests + one enrollment per chip, all on req lanes
        assert len(request_spans) == 32
        by_name = {e["name"] for e in request_spans}
        assert by_name == {"request.enroll", "request.auth"}
        assert {e["tid"] for e in request_spans} <= req_tids

    def test_perf_ledger_ingests_service_metrics(self, tmp_path, capsys):
        from repro import telemetry

        ledger_path = tmp_path / "perf.jsonl"
        assert self._loadgen("--perf-ledger", str(ledger_path)) == 0
        (entry,) = telemetry.PerfLedger(ledger_path).entries()
        assert entry.bench == "loadgen"
        assert entry.values["auth_per_s"] > 0
        assert "service.auth.availability" in entry.values
        assert "service.auth.p99_ms" in entry.values

    def test_events_heartbeats_with_rotation_cap(self, tmp_path, capsys):
        import json

        events = tmp_path / "events.jsonl"
        code = self._loadgen(
            "--events", str(events), "--events-max-bytes", "65536"
        )
        assert code == 0
        recs = [json.loads(l) for l in events.read_text().splitlines()]
        assert recs[0]["event"] == "run.start"
        assert recs[0]["command"] == "loadgen"
        assert recs[-1]["event"] == "run.end"
        # heartbeats are throttled, so a sub-interval run may emit none;
        # any that land must come from the loadgen stages
        stages = {r["stage"] for r in recs if "stage" in r}
        assert stages <= {"loadgen.enroll", "loadgen.requests"}
