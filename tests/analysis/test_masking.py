"""E9 masking ablation experiment (unit scale)."""

import pytest

from repro.analysis import ExperimentConfig, masking_ablation


@pytest.fixture(scope="module")
def result():
    return masking_ablation(
        ExperimentConfig(n_chips=5, n_ros=64, seed=21), ks=(2, 8), t_years=10.0
    )


class TestMaskingAblation:
    def test_row_labels(self, result):
        labels = [row.label for row in result.rows]
        assert labels[0] == "ro-puf / neighbour (k=2)"
        assert "ro-puf / 1-of-8 masking" in labels
        assert labels[-1] == "aro-puf / neighbour (reference)"

    def test_bits_follow_group_size(self, result):
        by_label = {row.label: row for row in result.rows}
        assert by_label["ro-puf / neighbour (k=2)"].n_bits == 32
        assert by_label["ro-puf / 1-of-8 masking"].n_bits == 8

    def test_masking_widens_margin(self, result):
        by_label = {row.label: row for row in result.rows}
        assert (
            by_label["ro-puf / 1-of-8 masking"].mean_margin_percent
            > 2 * by_label["ro-puf / neighbour (k=2)"].mean_margin_percent
        )

    def test_masking_reduces_aging_flips(self, result):
        by_label = {row.label: row for row in result.rows}
        assert (
            by_label["ro-puf / 1-of-8 masking"].aging_flips_percent
            < by_label["ro-puf / neighbour (k=2)"].aging_flips_percent
        )

    def test_percentages_bounded(self, result):
        for row in result.rows:
            assert 0.0 <= row.noise_flips_percent <= 100.0
            assert 0.0 <= row.aging_flips_percent <= 100.0
            assert row.mean_margin_percent > 0.0
