"""Experiment harness: structure and qualitative shape at small scale.

Quantitative anchors at paper scale are asserted (with bands) in
tests/integration/test_paper_anchors.py and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis import (
    ExperimentConfig,
    aging_bitflips,
    duty_ablation,
    ecc_area_experiment,
    environmental_reliability,
    frequency_degradation,
    layout_ablation,
    randomness_experiment,
    uniqueness_experiment,
)
from repro.ecc import standard_codes


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=6, n_ros=32, seed=7)


YEARS = (1.0, 5.0, 10.0)


class TestFrequencyDegradation:
    def test_structure_and_shape(self, config):
        res = frequency_degradation(config, years=YEARS)
        assert set(res.series) == {"ro-puf", "aro-puf"}
        conv = res.series["ro-puf"]
        assert conv.x == list(YEARS)
        # degradation grows with time and stays percent-scale
        assert conv.y == sorted(conv.y)
        assert 0 < conv.y[-1] < 10

    def test_aro_degrades_less(self, config):
        res = frequency_degradation(config, years=YEARS)
        assert (
            res.series["aro-puf"].y_at(10.0) < 0.5 * res.series["ro-puf"].y_at(10.0)
        )

    def test_fresh_frequency_reported(self, config):
        res = frequency_degradation(config, years=YEARS)
        assert 0.5 < res.fresh_frequency_ghz["ro-puf"] < 2.0


class TestAgingBitflips:
    def test_monotone_flip_growth(self, config):
        res = aging_bitflips(config, years=YEARS)
        for s in res.series.values():
            assert s.y == sorted(s.y)

    def test_aro_beats_conventional(self, config):
        res = aging_bitflips(config, years=YEARS)
        final = res.at_ten_years()
        assert final["aro-puf"] < 0.6 * final["ro-puf"]

    def test_final_reports_attached(self, config):
        res = aging_bitflips(config, years=YEARS)
        assert res.final_reports["ro-puf"].per_chip.shape == (6,)


class TestUniqueness:
    def test_reports_and_histograms(self, config):
        res = uniqueness_experiment(config, bins=10)
        assert 25 < res.reports["ro-puf"].percent() < 55
        centers, counts = res.histograms["aro-puf"]
        assert centers.shape == (10,)
        assert counts.sum() == 6 * 5 // 2


class TestRandomness:
    def test_all_sections_present(self, config):
        res = randomness_experiment(config)
        for section in (res.uniformity, res.aliasing, res.battery):
            assert set(section) == {"ro-puf", "aro-puf"}
        assert 0.2 < res.uniformity["aro-puf"].mean < 0.8
        assert len(res.battery["aro-puf"].p_values) == 7


class TestEnvironmental:
    def test_corner_series(self, config):
        res = environmental_reliability(
            config, temperatures_c=(25.0, 85.0), vdd_rel=(0.9, 1.0), votes=3
        )
        conv_t = res.temperature_series["ro-puf"]
        assert conv_t.x == [25.0, 85.0]
        # flips at the extreme corner exceed the nominal re-read noise
        assert conv_t.y[1] >= conv_t.y[0]
        assert res.voltage_series["aro-puf"].x == [0.9, 1.0]


class TestEccArea:
    def test_single_policy_row(self):
        res = ecc_area_experiment(
            policies=(("test policy", 0.20, 0.05),),
            bch_palette=standard_codes(max_m=8, max_t=20),
        )
        assert len(res.rows) == 1
        row = res.rows[0]
        assert row.conv is not None and row.aro is not None
        assert row.ratio > 1.5
        assert row.conv.raw_bits > 2 * row.aro.raw_bits

    def test_infeasible_policy_yields_none(self):
        res = ecc_area_experiment(
            policies=(("hopeless", 0.49, 0.49),),
            bch_palette=standard_codes(max_m=6, max_t=6),
        )
        assert res.rows[0].conv is None
        assert res.rows[0].ratio is None


class TestDutyAblation:
    def test_flips_grow_with_duty(self, config):
        res = duty_ablation(config, duties=(1e-7, 1e-4, 1e-2), t_years=10.0)
        assert res.duty_series.y == sorted(res.duty_series.y)

    def test_policy_ordering(self, config):
        res = duty_ablation(config, duties=(1e-7,), t_years=10.0)
        rows = dict(res.policy_rows)
        assert rows["aro-puf / recovery"] < rows["ro-puf / parked static"]
        assert rows["ro-puf / free running"] > rows["aro-puf / recovery"]


class TestLayoutAblation:
    def test_conventional_uniqueness_falls_with_systematics(self, config):
        res = layout_ablation(config, sys_multipliers=(0.0, 3.0))
        conv = res.systematic_series["ro-puf"]
        assert conv.y[1] < conv.y[0]

    def test_aro_stays_flat(self, config):
        res = layout_ablation(config, sys_multipliers=(0.0, 3.0))
        aro = res.systematic_series["aro-puf"]
        assert abs(aro.y[1] - aro.y[0]) < abs(
            res.systematic_series["ro-puf"].y[1]
            - res.systematic_series["ro-puf"].y[0]
        )

    def test_pairing_rows(self, config):
        res = layout_ablation(config, sys_multipliers=(1.0,))
        labels = [label for label, _ in res.pairing_rows]
        assert "ro-puf / neighbour" in labels
        assert "aro-puf / distant" in labels


class TestJobsDispatch:
    """``ExperimentConfig.jobs`` routes to the parallel engine without
    changing any experiment's numbers."""

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            ExperimentConfig(n_chips=4, n_ros=16, jobs=0)

    def test_jobs_excluded_from_results(self, config):
        parallel = ExperimentConfig(n_chips=6, n_ros=32, seed=7, jobs=2)
        serial = aging_bitflips(config, years=YEARS)
        sharded = aging_bitflips(parallel, years=YEARS)
        for name, series in serial.series.items():
            assert series.y == sharded.series[name].y

    def test_batch_study_for_dispatches(self, config):
        from repro import aro_design
        from repro.parallel import ParallelBatchStudy

        design = aro_design(n_ros=32)
        parallel = ExperimentConfig(n_chips=6, n_ros=32, seed=7, jobs=2)
        with parallel.batch_study_for(design) as study:
            assert isinstance(study, ParallelBatchStudy)
        with config.batch_study_for(design) as study:
            assert not isinstance(study, ParallelBatchStudy)


class TestMarginForensics:
    """E13: per-bit margin provenance (structure at small scale)."""

    @pytest.fixture(scope="class")
    def result(self, config):
        from repro.analysis import margin_forensics

        return margin_forensics(config, years=(5.0,))

    def test_both_designs_reported(self, result):
        assert set(result.reports) == {"ro-puf", "aro-puf"}
        assert result.t_horizon == 10.0

    def test_ledger_scalars_complete_and_finite(self, result):
        import math

        scalars = result.ledger_scalars()
        for design in ("ro-puf", "aro-puf"):
            for field in (
                "margin_p5_pct",
                "margin_p50_pct",
                "drift_rms_pct",
                "at_risk_pct",
                "flipped_pct",
                "forecast_recall",
                "forecast_precision",
            ):
                value = scalars[f"{design}.{field}"]
                assert math.isfinite(value)
        assert 0.0 <= scalars["aro-puf.forecast_recall"] <= 1.0

    def test_flipped_pct_agrees_with_e2(self, result, config):
        """Same seed, same silicon: forensics flips == E2's 10-year flips."""
        flips = aging_bitflips(config, years=(10.0,))
        scalars = result.ledger_scalars()
        for name in ("ro-puf", "aro-puf"):
            assert scalars[f"{name}.flipped_pct"] == pytest.approx(
                flips.series[name].y_at(10.0)
            )

    def test_aro_drifts_less_than_conventional(self, result):
        scalars = result.ledger_scalars()
        assert (
            scalars["aro-puf.drift_rms_pct"]
            < 0.5 * scalars["ro-puf.drift_rms_pct"]
        )

    def test_jobs_dispatch_identical_scalars(self, config):
        from repro.analysis import margin_forensics

        parallel = ExperimentConfig(n_chips=6, n_ros=32, seed=7, jobs=2)
        serial = margin_forensics(config, years=(5.0,)).ledger_scalars()
        sharded = margin_forensics(parallel, years=(5.0,)).ledger_scalars()
        assert serial == sharded
