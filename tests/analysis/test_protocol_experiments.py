"""E10/E11 experiment wrappers at unit scale."""

import numpy as np
import pytest

from repro.analysis import ExperimentConfig, attack_experiment, authentication_experiment


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=6, n_ros=32, seed=51)


class TestAuthenticationExperiment:
    @pytest.fixture(scope="class")
    def result(self, config):
        return authentication_experiment(config, years=(0.0, 10.0))

    def test_both_designs_covered(self, result):
        assert set(result.frr) == {"ro-puf", "aro-puf"}

    def test_fresh_silicon_authenticates(self, result):
        for rates in result.frr.values():
            assert rates[0] == 0.0

    def test_distance_populations_recorded(self, result):
        for name in result.frr:
            assert len(result.genuine_distances[name][10.0]) == 6
            assert len(result.impostor_distances[name]) == 6

    def test_aro_separability_dominates(self, result):
        conv_eer, _ = result.equal_error_rate("ro-puf", 10.0)
        aro_eer, _ = result.equal_error_rate("aro-puf", 10.0)
        assert aro_eer <= conv_eer


class TestAttackExperiment:
    @pytest.fixture(scope="class")
    def result(self, config):
        return attack_experiment(
            config, train_sizes=(1, 8, 16), n_test=8
        )

    def test_rows_per_design(self, result):
        assert set(result.rows) == {"ro-puf", "aro-puf"}
        for rows in result.rows.values():
            assert [n for n, _, _ in rows] == [1, 8, 16]

    def test_coverage_monotone(self, result):
        for rows in result.rows.values():
            coverages = [cov for _, _, cov in rows]
            assert coverages == sorted(coverages)

    def test_rich_disclosure_predicts_well(self, result):
        for rows in result.rows.values():
            assert rows[-1][1] > 0.75
