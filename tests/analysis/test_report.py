"""Markdown report generator."""

import pytest

from repro.analysis import ExperimentConfig
from repro.analysis.report import ALL_EXPERIMENTS, generate_report


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_chips=4, n_ros=16, seed=41)


class TestGenerateReport:
    def test_subset_report(self, config, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(config, experiments=("e2", "e3"), path=path)
        assert path.read_text() == text
        assert "# ARO-PUF reproduction report" in text
        assert "## Paper anchors" in text
        assert "## E2" in text and "## E3" in text
        assert "## E6" not in text

    def test_anchor_table_present(self, config):
        text = generate_report(config, experiments=("e3",))
        assert "| Anchor | Paper | Measured |" in text
        assert "49.67" in text

    def test_scale_recorded(self, config):
        text = generate_report(config, experiments=("e3",))
        assert "4 chips x 16 ROs" in text

    def test_unknown_experiment_rejected(self, config):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(config, experiments=("e99",))

    def test_all_experiments_constant_matches_cli(self):
        from repro.cli import EXPERIMENTS

        assert set(ALL_EXPERIMENTS) == set(EXPERIMENTS)
