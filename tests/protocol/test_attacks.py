"""Sorting modeling attack."""

import numpy as np
import pytest

from repro.core import conventional_design
from repro.protocol import (
    attack_curve,
    build_attack_model,
    harvest_crps,
    sorting_attack,
)


@pytest.fixture(scope="module")
def instance():
    return conventional_design(n_ros=32).sample_instances(1, rng=0)[0]


@pytest.fixture(scope="module")
def table(instance):
    return harvest_crps(instance, 40, rng=1)


class TestModel:
    def test_edges_match_observations(self, instance, table):
        model = build_attack_model(table, 32)
        assert model.n_comparisons > 0
        # every observed edge u -> v must mean f_v > f_u
        freqs = instance.frequencies()
        for u, v in model.graph.edges:
            assert freqs[v] > freqs[u]

    def test_coverage_grows_with_crps(self, table):
        small = build_attack_model(
            type(table)(
                challenges=table.challenges[:2],
                responses=table.responses[:2],
                chip_id=0,
            ),
            32,
        )
        big = build_attack_model(table, 32)
        assert big.known_order_fraction() > small.known_order_fraction()

    def test_derived_predictions_are_correct(self, instance, table):
        """Any bit the transitive closure decides must match silicon."""
        model = build_attack_model(table, 32)
        freqs = instance.frequencies()
        checked = 0
        for a in range(32):
            for b in range(a + 1, 32):
                bit, derived = model.predict_bit(a, b, rng=0)
                if derived:
                    assert bit == int(freqs[a] > freqs[b])
                    checked += 1
        assert checked > 50


class TestAttack:
    def test_accuracy_improves_with_training_data(self, instance, table):
        train_small, test = table.split(4)
        train_big = type(table)(
            challenges=table.challenges[:24],
            responses=table.responses[:24],
            chip_id=0,
        )
        acc_small = sorting_attack(train_small, test, 32, rng=2)
        # test on challenges disjoint from the big training set
        test_big = type(table)(
            challenges=table.challenges[24:],
            responses=table.responses[24:],
            chip_id=0,
        )
        acc_big = sorting_attack(train_big, test_big, 32, rng=2)
        assert acc_big > acc_small

    def test_rich_disclosure_breaks_the_puf(self, instance, table):
        train, test = table.split(32)
        assert sorting_attack(train, test, 32, rng=3) > 0.9

    def test_attack_curve_shape(self, instance):
        rows = attack_curve(instance, train_sizes=(1, 8, 24), n_test=8, rng=4)
        assert [n for n, _, _ in rows] == [1, 8, 24]
        coverages = [cov for _, _, cov in rows]
        assert coverages == sorted(coverages)
        for _, acc, cov in rows:
            assert 0.0 <= acc <= 1.0
            assert 0.0 <= cov <= 1.0
