"""Verifier protocol and the authentication study."""

import pytest

from repro.core import aro_design, conventional_design, make_study
from repro.protocol import Verifier, authentication_study


@pytest.fixture(scope="module")
def study():
    return make_study(aro_design(n_ros=32), n_chips=4, rng=9)


@pytest.fixture()
def verifier(study):
    v = Verifier(threshold=0.25, batch_size=4)
    for i, inst in enumerate(study.instances):
        v.enroll(inst, n_challenges=16, rng=100 + i)
    return v


class TestVerifier:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Verifier(threshold=0.6)
        with pytest.raises(ValueError):
            Verifier(batch_size=0)

    def test_enrolled_chips(self, verifier):
        assert verifier.enrolled_chips() == [0, 1, 2, 3]

    def test_genuine_chip_accepted(self, verifier, study):
        result = verifier.authenticate(0, study.instances[0], rng=1)
        assert result.accepted
        assert result.distance < 0.1

    def test_impostor_rejected(self, verifier, study):
        result = verifier.authenticate(0, study.instances[1], rng=1)
        assert not result.accepted
        assert result.distance > 0.3

    def test_unknown_identity(self, verifier, study):
        with pytest.raises(KeyError):
            verifier.authenticate(99, study.instances[0])

    def test_challenges_never_reused(self, verifier, study):
        before = verifier.remaining_challenges(0)
        verifier.authenticate(0, study.instances[0], rng=1)
        assert verifier.remaining_challenges(0) == before - 4

    def test_exhausted_table_refuses(self, verifier, study):
        for _ in range(4):  # 16 challenges / batch 4
            verifier.authenticate(0, study.instances[0], rng=1)
        with pytest.raises(RuntimeError, match="exhausted"):
            verifier.authenticate(0, study.instances[0], rng=1)


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        studies = {
            "ro-puf": make_study(conventional_design(n_ros=32), 6, rng=4),
            "aro-puf": make_study(aro_design(n_ros=32), 6, rng=4),
        }
        return authentication_study(
            studies,
            years=(0.0, 10.0),
            batch_size=8,
            n_challenges=32,
            rng=5,
        )

    def test_fresh_chips_authenticate(self, result):
        assert result.frr["ro-puf"][0] == 0.0
        assert result.frr["aro-puf"][0] == 0.0

    def test_aro_stays_authenticatable(self, result):
        assert result.frr["aro-puf"][-1] == 0.0

    def test_distances_recorded(self, result):
        assert len(result.genuine_distances["ro-puf"][10.0]) == 6
        assert len(result.impostor_distances["aro-puf"]) == 6

    def test_aging_widens_genuine_distance(self, result):
        import numpy as np

        for name in ("ro-puf", "aro-puf"):
            fresh = np.mean(result.genuine_distances[name][0.0])
            aged = np.mean(result.genuine_distances[name][10.0])
            assert aged >= fresh

    def test_eer_analysis(self, result):
        conv_eer, conv_thr = result.equal_error_rate("ro-puf", 10.0)
        aro_eer, aro_thr = result.equal_error_rate("aro-puf", 10.0)
        assert 0.0 <= conv_eer <= 1.0
        assert aro_eer <= conv_eer
        assert 0.0 < aro_thr < 0.5
