"""CRP harvesting and tables."""

import numpy as np
import pytest

from repro.core import conventional_design
from repro.protocol import CrpTable, harvest_crps


@pytest.fixture(scope="module")
def instance():
    return conventional_design(n_ros=32).sample_instances(1, rng=0)[0]


class TestHarvest:
    def test_table_shape(self, instance):
        table = harvest_crps(instance, 10, rng=1)
        assert table.n_challenges == 10
        assert table.n_bits == 16
        assert table.chip_id == instance.chip_id

    def test_challenges_unique(self, instance):
        table = harvest_crps(instance, 50, rng=1)
        assert len(set(table.challenges.tolist())) == 50

    def test_seeded_reproducibility(self, instance):
        a = harvest_crps(instance, 5, rng=2)
        b = harvest_crps(instance, 5, rng=2)
        assert np.array_equal(a.challenges, b.challenges)
        assert np.array_equal(a.responses, b.responses)

    def test_noiseless_harvest_deterministic_per_challenge(self, instance):
        table = harvest_crps(instance, 5, rng=3)
        # re-evaluating the same challenge reproduces the stored response
        import dataclasses

        from repro.core import RandomDisjointPairing

        design = dataclasses.replace(
            instance.design, pairing=RandomDisjointPairing()
        )
        inst = design.instantiate(instance.chip)
        for challenge, response in zip(table.challenges, table.responses):
            assert np.array_equal(inst.evaluate(int(challenge)), response)

    def test_different_challenges_different_responses(self, instance):
        table = harvest_crps(instance, 30, rng=4)
        distinct = {tuple(r.tolist()) for r in table.responses}
        assert len(distinct) > 25

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            harvest_crps(instance, 0)


class TestTable:
    def test_lookup(self, instance):
        table = harvest_crps(instance, 5, rng=5)
        c = int(table.challenges[2])
        assert np.array_equal(table.lookup(c), table.responses[2])

    def test_lookup_missing(self, instance):
        table = harvest_crps(instance, 5, rng=5)
        with pytest.raises(KeyError):
            table.lookup(-1)

    def test_split(self, instance):
        table = harvest_crps(instance, 10, rng=6)
        train, test = table.split(7)
        assert train.n_challenges == 7
        assert test.n_challenges == 3
        assert not set(train.challenges.tolist()) & set(test.challenges.tolist())

    def test_split_bounds(self, instance):
        table = harvest_crps(instance, 5, rng=6)
        with pytest.raises(ValueError):
            table.split(5)
        with pytest.raises(ValueError):
            table.split(0)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CrpTable(
                challenges=np.arange(3),
                responses=np.zeros((2, 4), dtype=np.uint8),
                chip_id=0,
            )
