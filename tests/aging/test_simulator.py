"""Aging simulator: trajectories, consistency, design contrast."""

import numpy as np
import pytest

from repro.aging import AgingSimulator, IdlePolicy, MissionProfile
from repro.circuit import aro_cell, conventional_cell
from repro.transistor import ptm90
from repro.variation import PMOS, VariationModel


@pytest.fixture(scope="module")
def chip():
    return VariationModel(tech=ptm90(), n_ros=16, n_stages=5).sample_chip(rng=0)


@pytest.fixture(scope="module")
def conv_aging(chip):
    sim = AgingSimulator(ptm90(), conventional_cell(5), MissionProfile())
    return sim.for_chip(chip, rng=1)


@pytest.fixture(scope="module")
def aro_aging(chip):
    sim = AgingSimulator(ptm90(), aro_cell(5), MissionProfile())
    return sim.for_chip(chip, rng=1)


class TestTrajectory:
    def test_zero_years_is_identity(self, conv_aging, chip):
        assert conv_aging.aged(0.0) is chip

    def test_delta_shape(self, conv_aging, chip):
        assert conv_aging.delta(10.0).shape == chip.vth.shape

    def test_delta_nonnegative(self, conv_aging):
        assert np.all(conv_aging.delta(10.0) >= 0)

    def test_monotone_in_time(self, conv_aging):
        d1 = conv_aging.delta(1.0)
        d5 = conv_aging.delta(5.0)
        d10 = conv_aging.delta(10.0)
        assert np.all(d5 >= d1)
        assert np.all(d10 >= d5)

    def test_negative_time_rejected(self, conv_aging):
        with pytest.raises(ValueError):
            conv_aging.delta(-1.0)

    def test_aged_chip_thresholds_increase(self, conv_aging, chip):
        aged = conv_aging.aged(10.0)
        assert np.all(aged.vth >= chip.vth)
        assert aged.chip_id == chip.chip_id

    def test_prefactors_frozen_across_calls(self, conv_aging):
        assert np.array_equal(conv_aging.delta(3.0), conv_aging.delta(3.0))


class TestDesignContrast:
    def test_conventional_ages_much_more(self, conv_aging, aro_aging):
        conv = conv_aging.delta(10.0)[:, :, PMOS].mean()
        aro = aro_aging.delta(10.0)[:, :, PMOS].mean()
        assert conv > 5 * aro

    def test_conventional_stage_pattern(self, conv_aging):
        """Stages 2 and 4 (parked input low) age; 1 and 3 mostly do not."""
        d = conv_aging.delta(10.0)[:, :, PMOS].mean(axis=0)
        assert d[2] > 10 * d[1]
        assert d[4] > 10 * d[3]

    def test_aro_ages_uniformly(self, aro_aging):
        d = aro_aging.delta(10.0)[:, :, PMOS].mean(axis=0)
        assert d.max() < 3 * max(d.min(), 1e-9)

    def test_free_running_suffers_hci(self, chip):
        free = AgingSimulator(
            ptm90(),
            conventional_cell(5),
            MissionProfile(),
            idle_policy=IdlePolicy.FREE_RUNNING,
        ).for_chip(chip, rng=1)
        parked = AgingSimulator(
            ptm90(), conventional_cell(5), MissionProfile()
        ).for_chip(chip, rng=1)
        # NMOS aging (HCI-dominated) is far worse free-running
        from repro.variation import NMOS

        assert (
            free.delta(10.0)[:, :, NMOS].mean()
            > 10 * parked.delta(10.0)[:, :, NMOS].mean()
        )


class TestFrequencyDegradation:
    def test_mean_degradation_positive_and_moderate(self, conv_aging):
        loss = conv_aging.mean_frequency_degradation(10.0)
        assert 0.005 < loss < 0.10

    def test_aro_degrades_less(self, conv_aging, aro_aging):
        assert aro_aging.mean_frequency_degradation(
            10.0
        ) < 0.3 * conv_aging.mean_frequency_degradation(10.0)


class TestSimulatorApi:
    def test_stage_mismatch_rejected(self, chip):
        sim = AgingSimulator(ptm90(), conventional_cell(7), MissionProfile())
        with pytest.raises(ValueError, match="stages"):
            sim.for_chip(chip)

    def test_population_trajectories_independent(self):
        model = VariationModel(tech=ptm90(), n_ros=8, n_stages=5)
        pop = model.sample_population(3, rng=0)
        sim = AgingSimulator(ptm90(), conventional_cell(5), MissionProfile())
        agings = sim.for_population(pop, rng=2)
        assert len(agings) == 3
        assert not np.array_equal(agings[0].nbti_a, agings[1].nbti_a)

    def test_seeded_reproducibility(self, chip):
        sim = AgingSimulator(ptm90(), conventional_cell(5), MissionProfile())
        a = sim.for_chip(chip, rng=5).delta(10.0)
        b = sim.for_chip(chip, rng=5).delta(10.0)
        assert np.array_equal(a, b)
