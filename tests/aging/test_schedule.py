"""Mission profiles: bookkeeping of lifetime activity."""

import pytest

from repro.aging import SECONDS_PER_YEAR, MissionProfile, burn_in_mission, typical_mission


class TestValidation:
    def test_duty_bounds(self):
        with pytest.raises(ValueError):
            MissionProfile(eval_duty=1.5)
        with pytest.raises(ValueError):
            MissionProfile(eval_duty=-0.1)

    def test_temperature_positive(self):
        with pytest.raises(ValueError):
            MissionProfile(temperature_k=0.0)

    def test_frequency_positive(self):
        with pytest.raises(ValueError):
            MissionProfile(osc_frequency_hz=0.0)


class TestBookkeeping:
    def test_active_seconds(self):
        mission = MissionProfile(eval_duty=1e-6)
        assert mission.active_seconds(10.0) == pytest.approx(
            1e-6 * 10 * SECONDS_PER_YEAR
        )

    def test_transitions(self):
        mission = MissionProfile(eval_duty=1e-6, osc_frequency_hz=2e9)
        assert mission.transitions(1.0) == pytest.approx(
            2e9 * 1e-6 * SECONDS_PER_YEAR
        )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            MissionProfile().active_seconds(-1.0)

    def test_with_eval_duty_copies(self):
        base = MissionProfile()
        busy = base.with_eval_duty(1e-3)
        assert busy.eval_duty == 1e-3
        assert busy.temperature_k == base.temperature_k
        assert base.eval_duty != 1e-3


class TestPresets:
    def test_typical_mission_is_rare_use(self):
        assert typical_mission().eval_duty < 1e-5

    def test_burn_in_is_hot(self):
        assert burn_in_mission().temperature_k > typical_mission().temperature_k
