"""HCI law: transition-count scaling and prefactor statistics."""

import numpy as np
import pytest

from repro.aging import PMOS_HCI_FACTOR, hci_shift
from repro.aging.hci import sample_prefactors
from repro.transistor import ptm90


@pytest.fixture(scope="module")
def params():
    return ptm90().hci


class TestHciShift:
    def test_zero_transitions_no_shift(self, params):
        assert hci_shift(0.0, params) == 0.0

    def test_monotone_in_transitions(self, params):
        shifts = [float(hci_shift(n, params)) for n in (1e12, 1e14, 1e16)]
        assert shifts == sorted(shifts)

    def test_reference_normalisation(self, params):
        """At exactly ref_transitions the shift equals b_mean."""
        assert float(hci_shift(params.ref_transitions, params)) == pytest.approx(
            params.b_mean
        )

    def test_power_law(self, params):
        r = float(hci_shift(100 * params.ref_transitions, params)) / float(
            hci_shift(params.ref_transitions, params)
        )
        assert r == pytest.approx(100**params.m)

    def test_pmos_reduced(self, params):
        n = params.ref_transitions
        assert float(hci_shift(n, params, pmos=True)) == pytest.approx(
            PMOS_HCI_FACTOR * float(hci_shift(n, params))
        )

    def test_saturation(self, params):
        assert float(hci_shift(1e30, params, prefactor=1.0)) == params.max_shift

    def test_negative_rejected(self, params):
        with pytest.raises(ValueError):
            hci_shift(-1.0, params)

    def test_free_running_ten_years_is_significant(self, params):
        """A ring left oscillating at 1 GHz for 10 years takes real damage
        (the ablation baseline), while the ARO's few seconds do not."""
        year = params.ref_transitions
        free_running = float(hci_shift(10 * year, params))
        aro_like = float(hci_shift(2e-7 * 10 * year, params))
        assert free_running > 0.01
        assert aro_like < 1e-3


class TestPrefactors:
    def test_moments(self, params):
        rng = np.random.default_rng(0)
        b = sample_prefactors(200_000, params, rng)
        assert b.mean() == pytest.approx(params.b_mean, rel=0.02)
        assert b.std() / b.mean() == pytest.approx(params.b_cv, rel=0.05)

    def test_positive(self, params):
        rng = np.random.default_rng(1)
        assert np.all(sample_prefactors(1000, params, rng) > 0)
