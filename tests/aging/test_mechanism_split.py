"""PopulationAging.delta_components: the exact NBTI/HCI split."""

import numpy as np
import pytest

from repro.core import aro_design, conventional_design, make_batch_study

SEED = 20140324


@pytest.fixture(scope="module", params=["ro-puf", "aro-puf"])
def aging(request):
    design = (
        conventional_design(n_ros=8, n_stages=5)
        if request.param == "ro-puf"
        else aro_design(n_ros=8, n_stages=5)
    )
    return make_batch_study(design, n_chips=4, rng=SEED).aging


class TestDeltaComponents:
    def test_sum_is_bit_identical_to_delta(self, aging):
        """The forensics attribution contract: no reconciliation residual."""
        for t in (0.5, 5.0, 10.0):
            bti, hci = aging.delta_components(t)
            assert np.array_equal(bti + hci, aging.delta(t))

    def test_shapes_match_delta(self, aging):
        bti, hci = aging.delta_components(10.0)
        assert bti.shape == aging.delta(10.0).shape
        assert hci.shape == bti.shape

    def test_components_nonnegative(self, aging):
        bti, hci = aging.delta_components(10.0)
        assert np.all(bti >= 0)
        assert np.all(hci >= 0)

    def test_zero_years_is_zero(self, aging):
        bti, hci = aging.delta_components(0.0)
        assert not bti.any()
        assert not hci.any()

    def test_negative_time_rejected(self, aging):
        with pytest.raises(ValueError):
            aging.delta_components(-1.0)

    def test_does_not_pollute_delta_memo(self, aging):
        before = aging.cached_delta(3.25)
        aging.delta_components(3.25)
        assert aging.cached_delta(3.25) is before
