"""Stress bookkeeping: cell + mission + policy -> per-device duties."""

import numpy as np
import pytest

from repro.aging import IdlePolicy, MissionProfile, compute_stress, default_idle_policy
from repro.circuit import aro_cell, conventional_cell
from repro.variation import NMOS, PMOS


@pytest.fixture(scope="module")
def mission():
    return MissionProfile(eval_duty=1e-6)


class TestDefaultPolicies:
    def test_conventional_parks_static(self):
        assert default_idle_policy(conventional_cell()) is IdlePolicy.PARKED_STATIC

    def test_aro_recovers(self):
        assert default_idle_policy(aro_cell()) is IdlePolicy.RECOVERY

    def test_recovery_requires_aro(self, mission):
        with pytest.raises(ValueError, match="recovery"):
            compute_stress(conventional_cell(), mission, IdlePolicy.RECOVERY)


class TestConventionalStress:
    def test_alternating_pmos_dc_duty(self, mission):
        stress = compute_stress(conventional_cell(5), mission)
        pmos = stress.nbti_duty[:, PMOS]
        idle = 1 - mission.eval_duty
        expected = np.array([0, 0, 1, 0, 1]) * idle + 0.5 * mission.eval_duty
        assert np.allclose(pmos, expected)

    def test_complementary_nmos_pbti(self, mission):
        stress = compute_stress(conventional_cell(5), mission)
        nmos = stress.pbti_duty[:, NMOS]
        assert nmos[0] > 0.9  # parked high
        assert nmos[2] < 0.01  # parked low

    def test_tiny_transition_budget(self, mission):
        stress = compute_stress(conventional_cell(5), mission)
        # one year of transitions at duty 1e-6 and ~1 GHz
        assert stress.transitions_per_year[0, PMOS] == pytest.approx(
            1e-6 * 1e9 * 365.25 * 86400, rel=1e-6
        )


class TestAroStress:
    def test_no_dc_nbti_anywhere(self, mission):
        stress = compute_stress(aro_cell(5), mission)
        assert np.all(stress.nbti_duty[:, PMOS] <= 0.5 * mission.eval_duty + 1e-15)

    def test_balanced_across_stages(self, mission):
        """Every ARO stage must see identical stress (the design's point)."""
        stress = compute_stress(aro_cell(5), mission)
        assert np.allclose(stress.nbti_duty, stress.nbti_duty[0])
        assert np.allclose(stress.pbti_duty, stress.pbti_duty[0])

    def test_nmos_holds_pbti_while_idle(self, mission):
        stress = compute_stress(aro_cell(5), mission)
        assert np.all(stress.pbti_duty[:, NMOS] > 0.99)


class TestParkedToggling:
    def test_half_duty_everywhere(self):
        mission = MissionProfile(eval_duty=1e-6)
        stress = compute_stress(
            conventional_cell(5), mission, IdlePolicy.PARKED_TOGGLING
        )
        idle = 1 - mission.eval_duty
        assert np.allclose(
            stress.nbti_duty[:, PMOS], 0.5 * idle + 0.5 * mission.eval_duty
        )
        assert np.allclose(
            stress.pbti_duty[:, NMOS], 0.5 * idle + 0.5 * mission.eval_duty
        )

    def test_no_extra_transitions(self):
        """Pattern toggling is quasi-static: no HCI-relevant switching."""
        mission = MissionProfile(eval_duty=1e-6)
        static = compute_stress(conventional_cell(5), mission)
        toggling = compute_stress(
            conventional_cell(5), mission, IdlePolicy.PARKED_TOGGLING
        )
        assert np.array_equal(
            static.transitions_per_year, toggling.transitions_per_year
        )


class TestFreeRunning:
    def test_half_duty_and_full_transitions(self):
        mission = MissionProfile(eval_duty=1e-6)
        stress = compute_stress(
            conventional_cell(5), mission, IdlePolicy.FREE_RUNNING
        )
        assert np.allclose(stress.nbti_duty[:, PMOS], 0.5)
        assert stress.transitions_per_year[0, NMOS] == pytest.approx(
            1e9 * 365.25 * 86400, rel=1e-6
        )


class TestProfileValidation:
    def test_shape_enforced(self):
        from repro.aging import StressProfile

        with pytest.raises(ValueError):
            StressProfile(
                nbti_duty=np.zeros(5),
                pbti_duty=np.zeros((5, 2)),
                transitions_per_year=np.zeros((5, 2)),
            )

    def test_duty_over_one_rejected(self):
        from repro.aging import StressProfile

        with pytest.raises(ValueError):
            StressProfile(
                nbti_duty=np.full((5, 2), 1.5),
                pbti_duty=np.zeros((5, 2)),
                transitions_per_year=np.zeros((5, 2)),
            )

    def test_negative_rejected(self):
        from repro.aging import StressProfile

        with pytest.raises(ValueError):
            StressProfile(
                nbti_duty=np.zeros((5, 2)),
                pbti_duty=np.zeros((5, 2)),
                transitions_per_year=np.full((5, 2), -1.0),
            )
