"""NBTI/PBTI law: power laws, temperature, prefactor statistics."""

import numpy as np
import pytest

from repro.aging import bti_shift, relaxed_shift, sample_prefactors, temperature_acceleration
from repro.transistor import T_REF_K, ptm90
from repro.transistor.technology import NbtiParameters


@pytest.fixture(scope="module")
def params():
    return ptm90().nbti


class TestBtiShift:
    def test_zero_time_no_shift(self, params):
        assert bti_shift(1.0, 0.0, params) == 0.0

    def test_zero_duty_no_shift(self, params):
        assert bti_shift(0.0, 10.0, params) == 0.0

    def test_monotone_in_time(self, params):
        shifts = [float(bti_shift(1.0, t, params)) for t in (1, 2, 5, 10)]
        assert shifts == sorted(shifts)
        assert shifts[0] > 0

    def test_monotone_in_duty(self, params):
        shifts = [float(bti_shift(d, 10.0, params)) for d in (0.01, 0.1, 0.5, 1.0)]
        assert shifts == sorted(shifts)

    def test_power_law_exponent(self, params):
        """Time and duty enter only as (duty * t)**n."""
        a = float(bti_shift(1.0, 2.0, params))
        b = float(bti_shift(0.5, 4.0, params))
        assert a == pytest.approx(b)
        ratio = float(bti_shift(1.0, 10.0, params)) / float(bti_shift(1.0, 1.0, params))
        assert ratio == pytest.approx(10**params.n)

    def test_ten_year_dc_magnitude(self, params):
        """The documented ~68 mV 10-year DC shift at T_ref."""
        shift = float(bti_shift(1.0, 10.0, params))
        assert 0.05 < shift < 0.09

    def test_pbti_scaled_down(self, params):
        full = float(bti_shift(1.0, 10.0, params))
        weak = float(bti_shift(1.0, 10.0, params, pbti=True))
        assert weak == pytest.approx(params.pbti_factor * full)

    def test_saturation_cap(self, params):
        huge = float(bti_shift(1.0, 10.0, params, prefactor=10.0))
        assert huge == params.max_shift

    def test_duty_bounds_enforced(self, params):
        with pytest.raises(ValueError):
            bti_shift(1.5, 10.0, params)
        with pytest.raises(ValueError):
            bti_shift(-0.1, 10.0, params)

    def test_negative_time_rejected(self, params):
        with pytest.raises(ValueError):
            bti_shift(1.0, -1.0, params)

    def test_broadcasting(self, params):
        duty = np.array([[0.0, 0.5], [1.0, 0.25]])
        pref = np.full((2, 2), params.a_mean)
        out = bti_shift(duty, 10.0, params, prefactor=pref)
        assert out.shape == (2, 2)
        assert out[0, 0] == 0.0


class TestTemperature:
    def test_unity_at_reference(self, params):
        assert temperature_acceleration(T_REF_K, params) == pytest.approx(1.0)

    def test_accelerates_when_hot(self, params):
        assert temperature_acceleration(T_REF_K + 60, params) > 1.2

    def test_decelerates_when_cold(self, params):
        assert temperature_acceleration(T_REF_K - 40, params) < 1.0

    def test_arrhenius_form(self, params):
        """ln(k) must be linear in 1/T."""
        t1, t2 = 320.0, 360.0
        k1 = temperature_acceleration(t1, params)
        k2 = temperature_acceleration(t2, params)
        slope = np.log(k2 / k1) / (1 / t1 - 1 / t2)
        from repro.transistor import BOLTZMANN_EV

        assert slope == pytest.approx(params.ea / BOLTZMANN_EV)


class TestPrefactors:
    def test_mean_preserved(self, params):
        rng = np.random.default_rng(0)
        a = sample_prefactors(200_000, params, rng)
        assert a.mean() == pytest.approx(params.a_mean, rel=0.02)

    def test_cv_preserved(self, params):
        rng = np.random.default_rng(0)
        a = sample_prefactors(200_000, params, rng)
        assert a.std() / a.mean() == pytest.approx(params.a_cv, rel=0.05)

    def test_all_positive(self, params):
        rng = np.random.default_rng(1)
        assert np.all(sample_prefactors(10_000, params, rng) > 0)

    def test_zero_cv_is_deterministic(self):
        params = NbtiParameters(a_cv=0.0)
        rng = np.random.default_rng(0)
        a = sample_prefactors(100, params, rng)
        assert np.all(a == params.a_mean)


class TestRelaxedShift:
    def test_no_cycles_matches_plain(self, params):
        plain = float(bti_shift(1.0, 10.0, params))
        assert float(relaxed_shift(1.0, 10.0, params, relax_cycles=0)) == plain

    def test_relaxation_reduces_shift(self, params):
        plain = float(relaxed_shift(1.0, 10.0, params, relax_cycles=0))
        relaxed = float(relaxed_shift(1.0, 10.0, params, relax_cycles=12))
        assert relaxed < plain

    def test_more_cycles_more_recovery(self, params):
        shifts = [
            float(relaxed_shift(1.0, 10.0, params, relax_cycles=c))
            for c in (1, 4, 16, 64)
        ]
        assert shifts == sorted(shifts, reverse=True)

    def test_bounded_below_by_permanent_component(self, params):
        plain = float(relaxed_shift(1.0, 10.0, params, relax_cycles=0))
        deep = float(relaxed_shift(1.0, 10.0, params, relax_cycles=10_000))
        assert deep > (1 - params.recovery_fraction) * plain * 0.99

    def test_negative_cycles_rejected(self, params):
        with pytest.raises(ValueError):
            relaxed_shift(1.0, 10.0, params, relax_cycles=-1)
