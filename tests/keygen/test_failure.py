"""Key-failure analysis: analytic model versus Monte-Carlo ground truth."""

import pytest

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.keygen import (
    FuzzyExtractor,
    analytic_key_failure,
    empirical_key_failure,
    required_correction,
)


def make_codec(m=5, t=2, r=3, key_bits=32):
    return KeyCodec(
        code=ConcatenatedCode(BchCode.design(m, t), RepetitionCode(r)),
        key_bits=key_bits,
    )


class TestRequiredCorrection:
    def test_zero_error_needs_nothing(self):
        assert required_correction(0.0, 127, 1e-6) == 0

    def test_monotone_in_p(self):
        ts = [required_correction(p, 127, 1e-6) for p in (0.01, 0.05, 0.1)]
        assert ts == sorted(ts)

    def test_monotone_in_target(self):
        loose = required_correction(0.05, 127, 1e-3)
        tight = required_correction(0.05, 127, 1e-9)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ValueError):
            required_correction(1.5, 127, 1e-6)
        with pytest.raises(ValueError):
            required_correction(0.1, 127, 0.0)


class TestAnalyticVsEmpirical:
    def test_agreement_at_moderate_error(self):
        """The binomial model must track the real decoder's failure rate.

        Chosen operating point: p where failures are frequent enough to
        measure in a few hundred trials (~20-40 %)."""
        codec = make_codec(m=5, t=2, r=3, key_bits=32)
        p = 0.12
        analytic = analytic_key_failure(codec, p)
        est = empirical_key_failure(
            FuzzyExtractor(codec), p, trials=400, rng=0
        )
        assert est.ci_low <= analytic <= est.ci_high

    def test_near_zero_error_never_fails(self):
        codec = make_codec()
        est = empirical_key_failure(FuzzyExtractor(codec), 0.0, trials=50, rng=1)
        assert est.failures == 0
        assert analytic_key_failure(codec, 0.0) == 0.0

    def test_overwhelming_error_always_fails(self):
        codec = make_codec()
        est = empirical_key_failure(FuzzyExtractor(codec), 0.49, trials=50, rng=2)
        assert est.p_hat > 0.9

    def test_ci_contains_estimate(self):
        codec = make_codec()
        est = empirical_key_failure(FuzzyExtractor(codec), 0.1, trials=100, rng=3)
        assert est.ci_low <= est.p_hat <= est.ci_high
        assert 0.0 <= est.ci_low and est.ci_high <= 1.0

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            empirical_key_failure(FuzzyExtractor(make_codec()), 0.1, trials=0)
