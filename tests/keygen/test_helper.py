"""Helper data: validation and serialisation."""

import numpy as np
import pytest

from repro.keygen import HelperData


class TestValidation:
    def test_binary_enforced(self):
        with pytest.raises(ValueError):
            HelperData(offset=np.array([0, 1, 2]), codec_spec="c")

    def test_rank_enforced(self):
        with pytest.raises(ValueError):
            HelperData(offset=np.zeros((2, 2)), codec_spec="c")

    def test_dtype_normalised(self):
        h = HelperData(offset=np.array([0, 1, 1], dtype=np.int64), codec_spec="c")
        assert h.offset.dtype == np.uint8
        assert h.n_bits == 3


class TestSerialisation:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 93).astype(np.uint8)
        h = HelperData(offset=bits, codec_spec="Rep(3) o BCH(31,16,t=3)")
        blob = h.to_bytes()
        back = HelperData.from_bytes(blob, n_bits=93, codec_spec=h.codec_spec)
        assert np.array_equal(back.offset, bits)
        assert back.codec_spec == h.codec_spec

    def test_blob_length(self):
        h = HelperData(offset=np.zeros(93, dtype=np.uint8), codec_spec="c")
        assert len(h.to_bytes()) == 12  # ceil(93 / 8)

    def test_short_blob_rejected(self):
        with pytest.raises(ValueError, match="short"):
            HelperData.from_bytes(b"\x00", n_bits=93, codec_spec="c")
