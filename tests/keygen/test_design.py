"""Key-generator design-space search."""

import pytest

from repro.core import aro_design, conventional_design
from repro.ecc import standard_codes
from repro.keygen import best_design, search_design_space


@pytest.fixture(scope="module")
def palette():
    """Small palette keeps the search fast in unit tests."""
    return standard_codes(max_m=8, max_t=20)


class TestSearch:
    def test_all_points_feasible(self, palette):
        points = search_design_space(
            0.08, aro_design(), bch_palette=palette, failure_target=1e-6
        )
        assert points
        for pt in points[:20]:
            assert pt.key_failure <= 1e-6
            assert pt.codec.message_bits >= 128

    def test_sorted_by_area(self, palette):
        points = search_design_space(0.08, aro_design(), bch_palette=palette)
        areas = [pt.total_area for pt in points]
        assert areas == sorted(areas)

    def test_higher_error_costs_more(self, palette):
        cheap = best_design(0.05, aro_design(), bch_palette=palette)
        pricey = best_design(0.20, aro_design(), bch_palette=palette)
        assert pricey.total_area > cheap.total_area
        assert pricey.raw_bits > cheap.raw_bits

    def test_zero_error_needs_no_repetition(self, palette):
        pt = best_design(0.0, aro_design(), bch_palette=palette)
        assert pt.codec.code.inner.r == 1

    def test_infeasible_raises(self, palette):
        with pytest.raises(ValueError, match="no feasible"):
            best_design(
                0.45,
                conventional_design(),
                bch_palette=palette,
                repetitions=(1, 3),
            )

    def test_parameter_validation(self, palette):
        with pytest.raises(ValueError):
            search_design_space(0.6, aro_design(), bch_palette=palette)
        with pytest.raises(ValueError):
            search_design_space(
                0.1, aro_design(), bch_palette=palette, failure_target=0.0
            )


class TestDesignPoint:
    def test_ro_count_supports_raw_bits(self, palette):
        pt = best_design(0.08, aro_design(), bch_palette=palette)
        design = aro_design().with_n_ros(pt.n_ros)
        assert design.n_bits >= pt.raw_bits
        # and it is tight: one RO fewer would not suffice
        smaller = aro_design().with_n_ros(pt.n_ros - 1)
        assert smaller.n_bits < pt.raw_bits

    def test_describe_mentions_codec(self, palette):
        pt = best_design(0.08, aro_design(), bch_palette=palette)
        text = pt.describe()
        assert "BCH" in text and "raw_bits" in text

    def test_total_area_sums(self, palette):
        pt = best_design(0.08, aro_design(), bch_palette=palette)
        assert pt.total_area == pytest.approx(pt.puf_area + pt.ecc_area)


class TestPaperComparison:
    def test_aro_key_generator_much_smaller(self, palette):
        """The headline direction: at the measured 10-year error rates the
        conventional key generator costs several times the ARO one."""
        conv = best_design(
            0.32,
            conventional_design(),
            bch_palette=palette,
            repetitions=tuple(range(1, 64, 2)),
        )
        aro = best_design(0.077, aro_design(), bch_palette=palette)
        assert conv.total_area > 3 * aro.total_area
        assert conv.raw_bits > 5 * aro.raw_bits
