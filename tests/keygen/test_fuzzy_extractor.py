"""Fuzzy extractor: key stability, security hygiene, failure modes."""

import numpy as np
import pytest

from repro.ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from repro.keygen import FuzzyExtractor, KeyRecoveryError


@pytest.fixture(scope="module")
def extractor():
    codec = KeyCodec(
        code=ConcatenatedCode(BchCode.design(6, 4), RepetitionCode(3)),
        key_bits=128,
    )
    return FuzzyExtractor(codec)


@pytest.fixture(scope="module")
def response(extractor):
    rng = np.random.default_rng(0)
    return rng.integers(0, 2, extractor.response_bits).astype(np.uint8)


class TestEnrol:
    def test_key_width(self, extractor, response):
        helper, key = extractor.enroll(response, rng=1)
        assert len(key) == 16  # 128 bits
        assert helper.n_bits == extractor.response_bits

    def test_seeded_enrolment_reproducible(self, extractor, response):
        h1, k1 = extractor.enroll(response, rng=1)
        h2, k2 = extractor.enroll(response, rng=1)
        assert k1 == k2
        assert np.array_equal(h1.offset, h2.offset)

    def test_key_is_chip_bound_not_seed_bound(self, extractor, response):
        """The key is extracted from the response; re-enrolling with fresh
        masking randomness changes the helper but not the key."""
        h1, k1 = extractor.enroll(response, rng=1)
        h2, k2 = extractor.enroll(response, rng=2)
        assert k1 == k2
        assert not np.array_equal(h1.offset, h2.offset)

    def test_response_shape_checked(self, extractor):
        with pytest.raises(ValueError, match="response bits"):
            extractor.enroll(np.zeros(10, dtype=np.uint8))

    def test_key_not_derivable_from_helper_alone(self, extractor, response):
        """The offset must not equal the codeword or the response (a
        smoke-level secrecy check: the XOR masks both)."""
        helper, _ = extractor.enroll(response, rng=1)
        assert not np.array_equal(helper.offset, response)
        assert np.count_nonzero(helper.offset) > 0


class TestReproduce:
    def test_exact_response(self, extractor, response):
        helper, key = extractor.enroll(response, rng=1)
        assert extractor.reproduce(response, helper) == key

    def test_noisy_response_recovers(self, extractor, response):
        helper, key = extractor.enroll(response, rng=1)
        rng = np.random.default_rng(5)
        noise = (rng.random(response.size) < 0.03).astype(np.uint8)
        assert extractor.reproduce(response ^ noise, helper) == key

    def test_excess_noise_fails_loudly_or_differs(self, extractor, response):
        helper, key = extractor.enroll(response, rng=1)
        rng = np.random.default_rng(6)
        outcomes = []
        for _ in range(10):
            noise = (rng.random(response.size) < 0.45).astype(np.uint8)
            try:
                outcomes.append(extractor.reproduce(response ^ noise, helper) == key)
            except KeyRecoveryError:
                outcomes.append(False)
        assert not all(outcomes)

    def test_wrong_codec_spec_rejected(self, extractor, response):
        helper, _ = extractor.enroll(response, rng=1)
        from repro.keygen import HelperData

        fake = HelperData(offset=helper.offset, codec_spec="Rep(99) o BCH(7,4,t=1)")
        with pytest.raises(ValueError, match="enrolled with codec"):
            extractor.reproduce(response, fake)

    def test_wrong_helper_length_rejected(self, extractor, response):
        from repro.keygen import HelperData

        fake = HelperData(
            offset=np.zeros(10, dtype=np.uint8), codec_spec=str(extractor.codec)
        )
        with pytest.raises(ValueError, match="length"):
            extractor.reproduce(response, fake)

    def test_different_chips_different_keys(self, extractor):
        """Same helper + another chip's response must not reproduce the key
        (uniqueness of the enrolled secret)."""
        rng = np.random.default_rng(7)
        resp_a = rng.integers(0, 2, extractor.response_bits).astype(np.uint8)
        resp_b = rng.integers(0, 2, extractor.response_bits).astype(np.uint8)
        helper, key = extractor.enroll(resp_a, rng=1)
        try:
            other = extractor.reproduce(resp_b, helper)
            assert other != key
        except KeyRecoveryError:
            pass  # also acceptable: decoder refuses


class TestKeyBits:
    def test_over_256_bits_rejected(self):
        codec = KeyCodec(
            code=ConcatenatedCode(BchCode.design(8, 10), RepetitionCode(1)),
            key_bits=300,
        )
        fx = FuzzyExtractor(codec)
        rng = np.random.default_rng(0)
        resp = rng.integers(0, 2, fx.response_bits).astype(np.uint8)
        with pytest.raises(ValueError, match="SHA-256"):
            fx.enroll(resp, rng=1)
