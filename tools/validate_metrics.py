#!/usr/bin/env python
"""Validate a ``--metrics-out`` artefact: CI's telemetry smoke check.

Usage::

    python -m repro.cli run e2 --chips 4 --ros 16 --metrics-out /tmp/m.json
    python tools/validate_metrics.py /tmp/m.json

Checks that the file is valid JSON, carries the expected top-level
sections (``format``, ``version``, ``spans``, ``counters``, ``gauges``),
that every
span subtree is well-formed (name + non-negative duration), and that the
embedded manifest satisfies :data:`repro.telemetry.MANIFEST_SCHEMA`.
Exit status 0 on success, 1 on any violation — wired into CI so a
regression in the telemetry pipeline fails the build, not a user's
measurement campaign.

Needs the package importable (run with ``PYTHONPATH=src`` from the repo
root, or after ``pip install -e .``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _check_span(span, problems, path="spans"):
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: span has no name")
        name = "?"
    duration = span.get("duration_ns")
    if not isinstance(duration, int) or duration < 0:
        problems.append(f"{path}/{name}: missing or negative duration_ns")
    for i, child in enumerate(span.get("children", [])):
        _check_span(child, problems, f"{path}/{name}[{i}]")


def validate_payload(payload) -> list:
    """All problems found in one ``--metrics-out`` payload (empty = ok)."""
    from repro.telemetry import METRICS_FORMAT, validate_manifest

    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("format") != METRICS_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, expected {METRICS_FORMAT}"
        )
    version = payload.get("version")
    if not isinstance(version, str) or not version:
        problems.append("missing or non-string top-level 'version' (format 2)")
    for section in ("spans", "counters", "gauges"):
        if section not in payload:
            problems.append(f"missing section {section!r}")
    for i, span in enumerate(payload.get("spans", [])):
        _check_span(span, problems, f"spans[{i}]")
    for section in ("counters", "gauges"):
        for key, value in (payload.get(section) or {}).items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}[{key!r}] is not numeric")
    if "manifest" not in payload:
        problems.append("missing section 'manifest'")
    else:
        try:
            validate_manifest(payload["manifest"])
        except ValueError as exc:
            problems.append(str(exc))
        else:
            problems.extend(_check_execution_fields(payload["manifest"]))
    return problems


def _check_execution_fields(manifest) -> list:
    """Shape checks for the optional ``jobs`` / ``cache`` manifest fields.

    ``validate_manifest`` only type-checks them (integer-or-null /
    object-or-null); this enforces the semantics the parallel engine and
    result cache promise: a recorded worker count is positive, and a
    cache summary names its directory and lists hit/miss experiment ids.
    """
    problems = []
    jobs = manifest.get("jobs")
    if jobs is not None and jobs < 1:
        problems.append(f"manifest 'jobs' must be >= 1 when set, got {jobs}")
    cache = manifest.get("cache")
    if cache is not None:
        if not isinstance(cache.get("dir"), str) or not cache["dir"]:
            problems.append("manifest cache summary has no 'dir' string")
        for field in ("hits", "misses"):
            ids = cache.get(field)
            if not isinstance(ids, list) or not all(
                isinstance(x, str) for x in ids
            ):
                problems.append(
                    f"manifest cache summary field {field!r} must be a "
                    "list of experiment id strings"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a repro.cli --metrics-out JSON artefact"
    )
    parser.add_argument("path", type=pathlib.Path, help="metrics JSON file")
    args = parser.parse_args(argv)

    try:
        payload = json.loads(args.path.read_text())
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not valid JSON: {exc}", file=sys.stderr)
        return 1

    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    counters = payload.get("counters") or {}
    manifest = payload["manifest"]
    execution = f"jobs={manifest.get('jobs')}"
    cache = manifest.get("cache")
    if cache is not None:
        execution += (
            f", cache {len(cache.get('hits', []))} hit(s) / "
            f"{len(cache.get('misses', []))} miss(es)"
        )
    print(
        f"ok: {args.path} — {len(payload.get('spans', []))} root span(s), "
        f"{len(counters)} counter(s), manifest valid "
        f"(git {str(manifest.get('git_sha'))[:8]}, {execution})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
