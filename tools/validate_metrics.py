#!/usr/bin/env python
"""Validate observability artefacts: CI's telemetry smoke check.

Usage::

    python -m repro.cli run e2 --chips 4 --ros 16 --metrics-out /tmp/m.json
    python tools/validate_metrics.py /tmp/m.json
    python tools/validate_metrics.py --ledger runs/ledger.jsonl
    python tools/validate_metrics.py --explain explain.json
    python tools/validate_metrics.py --trace run.trace.json
    python tools/validate_metrics.py --flame flame.txt
    python tools/validate_metrics.py --service loadgen.json

Default mode checks a ``--metrics-out`` payload: valid JSON, the
expected top-level sections (``format``, ``version``, ``spans``,
``counters``, ``gauges``, ``histograms``), well-formed span subtrees
(name + non-negative duration), well-formed histogram states
(matching growth factor, integer bucket counts summing to ``count``),
and a manifest satisfying :data:`repro.telemetry.MANIFEST_SCHEMA`.

``--trace`` checks a ``--trace-out`` Chrome ``trace_event`` artefact:
a non-empty ``traceEvents`` list whose events carry name/phase/pid/tid,
with non-negative durations on complete (``X``) events — the shape
Perfetto's importer requires.

``--ledger`` checks a run-ledger JSONL file: every recorded scalar must
be finite (the ledger silently drops NaN/inf at write time, so a
*missing* required field is how a poisoned scalar manifests) and every
``e13`` entry must carry the full margin-forensics field set per design.

``--explain`` checks a ``repro explain --json`` payload against the
schema CI's explain smoke job relies on.

``--flame`` checks a ``repro perf flame`` collapsed-stack file: every
line must be ``lane;frame;...;frame <weight>`` with non-empty frames
and a positive integer sample weight — the grammar both
``flamegraph.pl`` and speedscope's importer parse.

``--service`` checks a ``repro loadgen --out`` artefact's ``service``
section: per-endpoint RED blocks (request counts, availability in
[0, 1], error taxonomy), full duration-histogram states under
``durations_ms``, a finite flat metrics map, SLO verdicts with a legal
status and band, and well-formed request-log samples (finite
non-negative ``duration_ms``, integer-or-null ``trace_id``).

Exit status 0 on success, 1 on any violation — wired into CI so a
regression in the observability pipeline fails the build, not a user's
measurement campaign.

Needs the package importable (run with ``PYTHONPATH=src`` from the repo
root, or after ``pip install -e .``).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys


def _check_span(span, problems, path="spans"):
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: span has no name")
        name = "?"
    duration = span.get("duration_ns")
    if not isinstance(duration, int) or duration < 0:
        problems.append(f"{path}/{name}: missing or negative duration_ns")
    for i, child in enumerate(span.get("children", [])):
        _check_span(child, problems, f"{path}/{name}[{i}]")


def validate_payload(payload) -> list:
    """All problems found in one ``--metrics-out`` payload (empty = ok)."""
    from repro.telemetry import METRICS_FORMAT, validate_manifest

    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("format") != METRICS_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, expected {METRICS_FORMAT}"
        )
    version = payload.get("version")
    if not isinstance(version, str) or not version:
        problems.append("missing or non-string top-level 'version' (format 2)")
    for section in ("spans", "counters", "gauges", "histograms"):
        if section not in payload:
            problems.append(f"missing section {section!r}")
    for i, span in enumerate(payload.get("spans", [])):
        _check_span(span, problems, f"spans[{i}]")
    for section in ("counters", "gauges"):
        for key, value in (payload.get(section) or {}).items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}[{key!r}] is not numeric")
    for name, hist in (payload.get("histograms") or {}).items():
        problems.extend(_check_histogram(name, hist))
    if "manifest" not in payload:
        problems.append("missing section 'manifest'")
    else:
        try:
            validate_manifest(payload["manifest"])
        except ValueError as exc:
            problems.append(str(exc))
        else:
            problems.extend(_check_execution_fields(payload["manifest"]))
    return problems


def _check_histogram(name, hist) -> list:
    """Shape checks for one serialised Histogram state.

    A metrics payload's histograms are full mergeable bucket states, so
    the invariants are structural: the growth factor must match this
    build's bucket layout (mergeability), counts must be non-negative
    integers, and the zero bucket plus the log buckets must account for
    every observation.
    """
    from repro.telemetry import GROWTH

    where = f"histograms[{name!r}]"
    if not isinstance(hist, dict):
        return [f"{where}: not an object"]
    problems = []
    growth = hist.get("growth")
    if not _finite_number(growth) or abs(growth - GROWTH) > 1e-9:
        problems.append(
            f"{where}: growth {growth!r} does not match the bucket "
            f"layout {GROWTH}"
        )
    count = hist.get("count")
    zero = hist.get("zero")
    buckets = hist.get("buckets")
    for field, value in (("count", count), ("zero", zero)):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{where}: {field} must be a non-negative integer")
    if not isinstance(buckets, dict):
        problems.append(f"{where}: missing 'buckets' object")
        return problems
    total = 0
    for idx, n in buckets.items():
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            problems.append(
                f"{where}: bucket[{idx!r}] must be a positive integer"
            )
            return problems
        total += n
    if isinstance(count, int) and isinstance(zero, int) and zero + total != count:
        problems.append(
            f"{where}: zero ({zero}) + bucket total ({total}) != count ({count})"
        )
    return problems


def validate_trace_events(payload) -> list:
    """All problems in a ``--trace-out`` Chrome-trace artefact (empty = ok)."""
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["missing or empty 'traceEvents' list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph"):
            if not isinstance(event.get(field), str) or not event[field]:
                problems.append(f"{where}: missing string field {field!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer field {field!r}")
        if event.get("ph") in ("X", "C") and not _finite_number(
            event.get("ts")
        ):
            problems.append(f"{where}: missing numeric 'ts'")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not _finite_number(dur) or dur < 0:
                problems.append(f"{where}: 'X' event needs non-negative 'dur'")
    return problems


def _trace_lanes(payload) -> int:
    """Distinct (pid, tid) lanes carrying real (non-metadata) events."""
    lanes = set()
    for event in payload.get("traceEvents", []):
        if isinstance(event, dict) and event.get("ph") != "M":
            lanes.add((event.get("pid"), event.get("tid")))
    return len(lanes)


def _check_execution_fields(manifest) -> list:
    """Shape checks for the optional execution manifest fields.

    ``validate_manifest`` only type-checks ``jobs`` / ``cache`` /
    ``store`` / ``block_size`` / ``peak_rss_bytes``; this enforces the
    semantics the engines promise: a recorded worker count is positive, a
    cache summary names its directory and lists hit/miss experiment ids,
    a store mode is one the config accepts, and recorded block sizes /
    RSS high-water marks are positive finite numbers.
    """
    problems = []
    jobs = manifest.get("jobs")
    if jobs is not None and jobs < 1:
        problems.append(f"manifest 'jobs' must be >= 1 when set, got {jobs}")
    store = manifest.get("store")
    if store is not None and store not in ("ram", "mmap"):
        problems.append(
            f"manifest 'store' must be 'ram' or 'mmap' when set, got {store!r}"
        )
    block_size = manifest.get("block_size")
    if block_size is not None and block_size < 1:
        problems.append(
            f"manifest 'block_size' must be >= 1 when set, got {block_size}"
        )
    peak = manifest.get("peak_rss_bytes")
    if peak is not None and (not _finite_number(peak) or peak < 0):
        problems.append(
            f"manifest 'peak_rss_bytes' must be a non-negative finite "
            f"number when set, got {peak!r}"
        )
    cache = manifest.get("cache")
    if cache is not None:
        if not isinstance(cache.get("dir"), str) or not cache["dir"]:
            problems.append("manifest cache summary has no 'dir' string")
        for field in ("hits", "misses"):
            ids = cache.get(field)
            if not isinstance(ids, list) or not all(
                isinstance(x, str) for x in ids
            ):
                problems.append(
                    f"manifest cache summary field {field!r} must be a "
                    "list of experiment id strings"
                )
    return problems


#: scalar fields every design block of an e13 ledger entry must carry.
#: Because the ledger drops non-finite values on write, "present" is the
#: proof that the experiment produced a real number for each of these.
E13_REQUIRED_FIELDS = (
    "margin_p5_pct",
    "margin_p50_pct",
    "drift_rms_pct",
    "at_risk_pct",
    "flipped_pct",
    "forecast_recall",
    "forecast_precision",
)

#: fields whose values are probabilities/rates bounded to [0, 1]
_UNIT_INTERVAL_FIELDS = ("forecast_recall", "forecast_precision")


def _finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_ledger_entries(entries) -> list:
    """All problems in a run ledger's parsed JSONL entries (empty = ok).

    Every scalar of every entry must be a finite number; ``e13`` entries
    must additionally carry the complete margin-forensics field set for
    each design they mention (a missing field means the experiment
    produced NaN/inf and the ledger writer discarded it).
    """
    problems = []
    for i, entry in enumerate(entries):
        where = f"entry[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not a JSON object")
            continue
        experiment = entry.get("experiment")
        if isinstance(experiment, str) and experiment:
            where = f"entry[{i}] ({experiment})"
        scalars = entry.get("scalars")
        if not isinstance(scalars, dict):
            problems.append(f"{where}: missing 'scalars' object")
            continue
        for key, value in scalars.items():
            if not _finite_number(value):
                problems.append(f"{where}: scalar {key!r} is not finite: {value!r}")
        if experiment != "e13":
            continue
        designs = sorted({k.split(".")[0] for k in scalars if "." in k})
        if not designs:
            problems.append(f"{where}: e13 entry carries no per-design scalars")
        for design in designs:
            for field in E13_REQUIRED_FIELDS:
                key = f"{design}.{field}"
                if key not in scalars:
                    problems.append(
                        f"{where}: missing {key!r} (forensics produced a "
                        "non-finite value, or the field set changed)"
                    )
            for field in _UNIT_INTERVAL_FIELDS:
                value = scalars.get(f"{design}.{field}")
                if value is not None and not 0.0 <= value <= 1.0:
                    problems.append(
                        f"{where}: {design}.{field} = {value!r} outside [0, 1]"
                    )
    return problems


def validate_collapsed_stacks(text) -> list:
    """All problems in a collapsed-stack (folded) file (empty = ok).

    The format is line-oriented: ``stack weight``, where the stack is a
    ``;``-joined frame list (first frame is the lane) and the weight is
    an integer sample count — for ``repro perf flame`` output, self-time
    in microseconds.  Zero-weight or malformed lines would be silently
    dropped (or worse, mis-merged) by downstream flamegraph tooling, so
    they fail validation here instead.
    """
    problems = []
    stacks = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        stack, sep, weight = line.rstrip().rpartition(" ")
        if not sep or not stack:
            problems.append(f"{where}: not of the form 'stack weight'")
            continue
        if not weight.isdigit() or int(weight) < 1:
            problems.append(
                f"{where}: weight {weight!r} is not a positive integer"
            )
        if any(not frame for frame in stack.split(";")):
            problems.append(f"{where}: stack {stack!r} has an empty frame")
        stacks += 1
    if stacks == 0:
        problems.append("no collapsed stacks (empty file)")
    return problems


#: legal SLO verdict statuses (see repro.service.slo.SloVerdict)
_SLO_STATUSES = ("pass", "warn", "fail", "missing")


def validate_service_payload(payload) -> list:
    """All problems in a ``repro loadgen --out`` artefact (empty = ok).

    Checks the ``service`` section a load-generation run appends to the
    benchmark-shaped payload: the RED per-endpoint blocks, the full
    duration-histogram states (reusing the metrics-payload histogram
    checks — the states must stay mergeable), the flat SLO-gateable
    metrics map, the verdict list, and the request-log tail CI's smoke
    job asserts trace ids against.
    """
    from repro.service.loadgen import SERVICE_SECTION_FORMAT
    from repro.telemetry.red import RED_FORMAT

    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    service = payload.get("service")
    if not isinstance(service, dict):
        return ["missing 'service' section (not a loadgen artefact?)"]
    if service.get("format") != SERVICE_SECTION_FORMAT:
        problems.append(
            f"service.format is {service.get('format')!r}, "
            f"expected {SERVICE_SECTION_FORMAT}"
        )

    # ---- RED state ---------------------------------------------------
    red = service.get("red")
    if not isinstance(red, dict):
        problems.append("missing 'service.red' section")
        red = {}
    elif red.get("format") != RED_FORMAT:
        problems.append(
            f"service.red.format is {red.get('format')!r}, expected {RED_FORMAT}"
        )
    endpoints = red.get("endpoints")
    if not isinstance(endpoints, dict) or not endpoints:
        problems.append("service.red.endpoints is missing or empty")
        endpoints = {}
    for endpoint, block in endpoints.items():
        where = f"service.red.endpoints[{endpoint!r}]"
        if not isinstance(block, dict):
            problems.append(f"{where}: not an object")
            continue
        requests = block.get("requests")
        if not isinstance(requests, int) or isinstance(requests, bool) or requests < 1:
            problems.append(f"{where}: 'requests' must be a positive integer")
        availability = block.get("availability")
        if not _finite_number(availability) or not 0.0 <= availability <= 1.0:
            problems.append(f"{where}: 'availability' outside [0, 1]")
        rate = block.get("rate_per_s")
        if not _finite_number(rate) or rate < 0.0:
            problems.append(f"{where}: 'rate_per_s' must be finite and >= 0")
        errors = block.get("errors")
        if not isinstance(errors, dict):
            problems.append(f"{where}: missing 'errors' taxonomy object")
            errors = {}
        for cls, n in errors.items():
            if not isinstance(n, int) or isinstance(n, bool) or n < 1:
                problems.append(
                    f"{where}: errors[{cls!r}] must be a positive integer"
                )
        outcomes = block.get("outcomes")
        if not isinstance(outcomes, dict) or not outcomes:
            problems.append(f"{where}: missing or empty 'outcomes' object")
        elif any(
            not isinstance(n, int) or isinstance(n, bool) or n < 1
            for n in outcomes.values()
        ):
            problems.append(
                f"{where}: outcome counts must be positive integers"
            )
        elif isinstance(requests, int) and sum(outcomes.values()) != requests:
            problems.append(
                f"{where}: outcome counts sum to {sum(outcomes.values())}, "
                f"but 'requests' is {requests}"
            )
    durations = red.get("durations_ms")
    if not isinstance(durations, dict):
        problems.append("service.red.durations_ms is missing")
    else:
        for site, hist in durations.items():
            problems.extend(_check_histogram(f"service:{site}", hist))

    # ---- flat metrics + SLO verdicts ----------------------------------
    metrics = service.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("service.metrics is missing or empty")
        metrics = {}
    for key, value in metrics.items():
        if not _finite_number(value):
            problems.append(f"service.metrics[{key!r}] is not finite: {value!r}")
    verdicts = service.get("slo")
    if not isinstance(verdicts, list) or not verdicts:
        problems.append("service.slo verdict list is missing or empty")
        verdicts = []
    for i, verdict in enumerate(verdicts):
        where = f"service.slo[{i}]"
        if not isinstance(verdict, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "metric"):
            if not isinstance(verdict.get(field), str) or not verdict[field]:
                problems.append(f"{where}: missing string field {field!r}")
        if verdict.get("status") not in _SLO_STATUSES:
            problems.append(
                f"{where}: status {verdict.get('status')!r} is not one of "
                f"{list(_SLO_STATUSES)}"
            )
        if verdict.get("bound") not in ("upper", "lower"):
            problems.append(
                f"{where}: bound {verdict.get('bound')!r} is not "
                "'upper' or 'lower'"
            )
        for field in ("pass_at", "fail_at"):
            if not _finite_number(verdict.get(field)):
                problems.append(f"{where}: {field} is not finite")
        measured = verdict.get("measured")
        if measured is not None and not _finite_number(measured):
            problems.append(f"{where}: measured is neither null nor finite")
        if verdict.get("status") == "missing" and measured is not None:
            problems.append(f"{where}: status 'missing' but measured is set")

    # ---- request-log tail ---------------------------------------------
    samples = service.get("requests")
    if not isinstance(samples, list):
        problems.append("service.requests sample list is missing")
        samples = []
    for i, sample in enumerate(samples):
        where = f"service.requests[{i}]"
        if not isinstance(sample, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("endpoint", "outcome"):
            if not isinstance(sample.get(field), str) or not sample[field]:
                problems.append(f"{where}: missing string field {field!r}")
        duration = sample.get("duration_ms")
        if not _finite_number(duration) or duration < 0:
            problems.append(
                f"{where}: 'duration_ms' must be finite and non-negative"
            )
        trace_id = sample.get("trace_id")
        if trace_id is not None and (
            not isinstance(trace_id, int) or isinstance(trace_id, bool)
        ):
            problems.append(f"{where}: 'trace_id' must be an integer or null")
    return problems


def validate_explain_payload(payload) -> list:
    """All problems in a ``repro explain --json`` payload (empty = ok)."""
    from repro.forensics.export import EXPLAIN_FORMAT

    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("format") != EXPLAIN_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, expected {EXPLAIN_FORMAT}"
        )
    if payload.get("kind") != "explain":
        problems.append(f"kind is {payload.get('kind')!r}, expected 'explain'")
    if not isinstance(payload.get("config"), dict):
        problems.append("missing 'config' object")
    designs = payload.get("designs")
    if not isinstance(designs, dict) or not designs:
        problems.append("missing or empty 'designs' object")
        return problems
    for name, block in designs.items():
        where = f"designs[{name!r}]"
        if not isinstance(block, dict):
            problems.append(f"{where}: not an object")
            continue
        for section in ("margin_summary", "forecast", "histogram", "chip"):
            if not isinstance(block.get(section), dict):
                problems.append(f"{where}: missing section {section!r}")
        forecast = block.get("forecast") or {}
        for field in ("k", "drift_scale", "threshold", "precision", "recall"):
            if not _finite_number(forecast.get(field)):
                problems.append(f"{where}: forecast.{field} is not finite")
        for field in ("precision", "recall"):
            value = forecast.get(field)
            if _finite_number(value) and not 0.0 <= value <= 1.0:
                problems.append(f"{where}: forecast.{field} outside [0, 1]")
        hist = block.get("histogram") or {}
        edges = hist.get("edges")
        counts = hist.get("counts")
        if not isinstance(edges, list) or len(edges) < 3:
            problems.append(f"{where}: histogram.edges must list >= 3 edges")
        elif not isinstance(counts, dict) or not counts:
            problems.append(f"{where}: histogram.counts is missing or empty")
        else:
            for year, row in counts.items():
                if not isinstance(row, list) or len(row) != len(edges) - 1:
                    problems.append(
                        f"{where}: histogram.counts[{year!r}] must have "
                        f"{len(edges) - 1} bins"
                    )
                elif any(not isinstance(c, int) or c < 0 for c in row):
                    problems.append(
                        f"{where}: histogram.counts[{year!r}] has "
                        "non-integer or negative counts"
                    )
        chip = block.get("chip") or {}
        bits = chip.get("bits")
        if not isinstance(bits, list) or not bits:
            problems.append(f"{where}: chip.bits is missing or empty")
        else:
            required = (
                "bit",
                "ro_a",
                "ro_b",
                "fresh_margin",
                "horizon_margin",
                "bti_shift",
                "hci_shift",
                "status",
            )
            for j, row in enumerate(bits):
                missing = [f for f in required if f not in row]
                if missing:
                    problems.append(
                        f"{where}: chip.bits[{j}] missing fields {missing}"
                    )
                    break
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate repro observability artefacts"
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--ledger",
        action="store_true",
        help="treat PATH as a run-ledger JSONL file",
    )
    mode.add_argument(
        "--explain",
        action="store_true",
        help="treat PATH as a 'repro explain --json' payload",
    )
    mode.add_argument(
        "--trace",
        action="store_true",
        help="treat PATH as a '--trace-out' Chrome trace_event artefact",
    )
    mode.add_argument(
        "--flame",
        action="store_true",
        help="treat PATH as a 'repro perf flame' collapsed-stack file",
    )
    mode.add_argument(
        "--service",
        action="store_true",
        help="treat PATH as a 'repro loadgen --out' service artefact",
    )
    parser.add_argument("path", type=pathlib.Path, help="artefact to validate")
    args = parser.parse_args(argv)

    try:
        text = args.path.read_text()
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    try:
        if args.flame:
            pass  # collapsed stacks are plain text, not JSON
        elif args.ledger:
            entries = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
        else:
            payload = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not valid JSON: {exc}", file=sys.stderr)
        return 1

    if args.flame:
        problems = validate_collapsed_stacks(text)
        n = sum(1 for line in text.splitlines() if line.strip())
        summary = f"{n} collapsed stack(s), all weights positive integers"
    elif args.ledger:
        problems = validate_ledger_entries(entries)
        summary = f"{len(entries)} ledger entr(ies), all scalars finite"
    elif args.explain:
        problems = validate_explain_payload(payload)
        summary = (
            f"explain payload, {len(payload.get('designs') or {})} design(s)"
        )
    elif args.trace:
        problems = validate_trace_events(payload)
        if not problems:
            summary = (
                f"{len(payload['traceEvents'])} trace event(s) across "
                f"{_trace_lanes(payload)} lane(s)"
            )
        else:
            summary = ""
    elif args.service:
        problems = validate_service_payload(payload)
        if not problems:
            service = payload["service"]
            endpoints = service["red"]["endpoints"]
            total = sum(block["requests"] for block in endpoints.values())
            statuses = [v["status"] for v in service["slo"]]
            worst = next(
                (s for s in ("fail", "missing", "warn") if s in statuses),
                "pass",
            )
            summary = (
                f"{len(endpoints)} endpoint(s), {total} request(s), "
                f"slo worst status {worst}, "
                f"{len(service['requests'])} request-log sample(s)"
            )
        else:
            summary = ""
    else:
        problems = validate_payload(payload)
        summary = ""
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    if summary:
        print(f"ok: {args.path} — {summary}")
        return 0
    counters = payload.get("counters") or {}
    manifest = payload["manifest"]
    execution = f"jobs={manifest.get('jobs')}"
    if manifest.get("store") is not None:
        execution += f", store={manifest['store']}"
        if manifest.get("block_size") is not None:
            execution += f", block_size={manifest['block_size']}"
        if manifest.get("peak_rss_bytes") is not None:
            execution += (
                f", peak_rss={manifest['peak_rss_bytes'] / 2**20:.0f}MiB"
            )
    cache = manifest.get("cache")
    if cache is not None:
        execution += (
            f", cache {len(cache.get('hits', []))} hit(s) / "
            f"{len(cache.get('misses', []))} miss(es)"
        )
    print(
        f"ok: {args.path} — {len(payload.get('spans', []))} root span(s), "
        f"{len(counters)} counter(s), "
        f"{len(payload.get('histograms') or {})} histogram(s), "
        f"manifest valid (git {str(manifest.get('git_sha'))[:8]}, {execution})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
