#!/usr/bin/env python
"""Gate a run ledger on the paper's anchor values: CI's drift check.

Usage::

    python -m repro.cli run e2 e3 e4 ... --ledger runs/ledger.jsonl
    python tools/check_anchors.py runs/ledger.jsonl

Merges the ledger's entries (latest recording of each metric wins) and
judges every anchor in :data:`repro.telemetry.PAPER_ANCHORS` against
them.  Exit status 0 while every anchor passes or warns, 1 as soon as
one lands outside its fail band — or, with ``--require-all``, when any
anchor was never measured.  ``repro check-anchors`` is the interactive
twin that measures the anchor experiments fresh.

Needs the package importable (run with ``PYTHONPATH=src`` from the repo
root, or after ``pip install -e .``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="judge a run ledger against the paper's anchor values"
    )
    parser.add_argument(
        "ledger", type=pathlib.Path, help="JSONL run ledger to check"
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="treat anchors with no recorded metric as failures",
    )
    args = parser.parse_args(argv)

    from repro.telemetry import (
        RunLedger,
        check_anchors,
        latest_scalars,
        render_verdicts,
        worst_status,
    )

    if not args.ledger.exists():
        print(f"error: no such ledger: {args.ledger}", file=sys.stderr)
        return 2
    entries = RunLedger(args.ledger).entries()
    if not entries:
        print(f"error: {args.ledger} holds no ledger entries", file=sys.stderr)
        return 2

    verdicts = check_anchors(latest_scalars(entries))
    print(f"anchors vs ledger {args.ledger} ({len(entries)} entries)")
    print(render_verdicts(verdicts))
    worst = worst_status(verdicts, missing_is_fail=args.require_all)
    print(f"worst status: {worst}")
    return 1 if worst == "fail" else 0


if __name__ == "__main__":
    sys.exit(main())
