"""Calibration driver: evaluate anchor metrics for candidate constants.

Used during development to pick the technology-card constants that land
the mechanistic simulation on the paper's anchors (32%/7.7% flips,
45%/49.67% uniqueness).  Kept in the repo so the calibration is auditable
and re-runnable.
"""
import dataclasses
import sys
import numpy as np

from repro.transistor.technology import ptm90, NbtiParameters, VariationParameters
from repro.aging.schedule import MissionProfile
from repro.core import conventional_design, aro_design, make_study
from repro.metrics import uniqueness, reliability


def evaluate(a_mean, a_cv, sigma_sys, eval_duty, pbti=0.02, cap=0.30, sigma_intra=0.020, n_chips=40, n_ros=256, seed=3):
    tech = ptm90()
    tech = tech.replace(
        nbti=dataclasses.replace(tech.nbti, a_mean=a_mean, a_cv=a_cv, pbti_factor=pbti, max_shift=cap),
        variation=dataclasses.replace(tech.variation, sigma_systematic=sigma_sys, sigma_intra_die=sigma_intra),
    )
    mission = MissionProfile(eval_duty=eval_duty)
    out = {}
    for factory in (conventional_design, aro_design):
        design = factory(n_ros=n_ros, tech=tech)
        study = make_study(design, n_chips=n_chips, mission=mission, rng=seed)
        goldens = study.responses()
        aged = study.responses(t_years=10.0)
        u = uniqueness(goldens)
        r = reliability(goldens, aged)
        out[design.name] = (u.percent(), r.percent())
    return out


if __name__ == "__main__":
    a_mean, a_cv, sigma_sys, duty, pbti = (float(x) for x in sys.argv[1:6])
    res = evaluate(a_mean, a_cv, sigma_sys, duty, pbti)
    for name, (u, f) in res.items():
        print(f"{name}: uniq={u:.2f}% flips10y={f:.2f}%")
    print("targets: conv uniq~45, aro uniq~49.67, conv flips~32, aro flips~7.7")
