#!/usr/bin/env python
"""Diff two benchmark result sets and flag regressions.

Compares the machine-readable ``*.json`` artefacts that
``benchmarks/_common.emit`` / ``emit_benchmark_stats`` drop into
``benchmarks/results/`` — typically one directory from the baseline
checkout and one from the candidate::

    python tools/bench_compare.py baseline/results benchmarks/results

Every metric shared by both sets is compared; a metric whose value grew
by more than the threshold (default 20 %) is a **regression** (all
tracked metrics — timings, flip percentages — are better when smaller).
Telemetry ``counters`` sections (work-done metrics: kernel invocations,
memo hit rates) are diffed and printed as well, but informationally —
doing *more work* is not by itself a regression.  ``memory`` sections
(peak RSS and footprint numbers from store-mode benchmarks) and
``histograms`` sections (per-metric latency quantile summaries — p50 and
p99 are diffed) are handled informationally too, and tolerantly:
artefacts written before those fields existed simply show ``n/a`` on
their side of the table rather than failing the diff.  ``roofline``
sections (throughput metrics, chips x years per second — bigger is
better) get the same union-keyed ``n/a`` tolerance with the gate
direction inverted: a *drop* beyond the threshold regresses.  ``--gate``
promotes the memory, roofline and histogram sections to gating: a move
in the bad direction beyond the threshold on a metric present in *both*
sets exits 1 like a values regression, while one-sided ``n/a`` rows
still never gate (counters and ledger scalars stay informational even
then).  ``service`` sections (the RED rate/availability/latency map a
``repro loadgen --out`` artefact carries) are diffed with the same
union-keyed ``n/a`` tolerance but stay informational even under
``--gate``: the map mixes bigger-is-better rates with smaller-is-better
latencies, so no single gate direction is honest — the SLO spec
(``repro loadgen --slo-gate``) owns those verdicts.  Run-ledger
``*.jsonl``
files found in either directory are diffed the same informational way
(experiment scalars have no universal "better" direction — the anchor
registry judges those, see ``tools/check_anchors.py``).  Exit status is
1 when any regression is found, so the script can gate CI; ``--json
PATH`` additionally writes the full diff machine-readably for CI to
consume.

Only the standard library is used: the script must run on a bare
interpreter without the package installed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Iterable, List, Tuple


def load_results(
    path: pathlib.Path, section: str = "values"
) -> Dict[str, float]:
    """Flatten one result set's ``section`` into ``{"file:metric": value}``.

    ``path`` is either a directory of ``*.json`` files or a single file.
    ``section`` is ``"values"`` (regression-gated headline metrics) or
    ``"counters"`` (informational work-done metrics).  Files that are not
    benchmark artefacts (no such mapping) are skipped rather than fatal,
    so the results directory can hold other droppings.
    """
    if path.is_dir():
        files: Iterable[pathlib.Path] = sorted(path.glob("*.json"))
    elif path.is_file():
        files = [path]
    else:
        raise FileNotFoundError(f"no such file or directory: {path}")

    metrics: Dict[str, float] = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        values = payload.get(section) if isinstance(payload, dict) else None
        if not isinstance(values, dict):
            continue
        name = payload.get("name", file.stem)
        for key, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"{name}:{key}"] = float(value)
    return metrics


def load_ledger_scalars(path: pathlib.Path) -> Dict[str, float]:
    """Flatten run-ledger ``*.jsonl`` lines into ``{"exp.key": value}``.

    ``path`` is a directory (every ``*.jsonl`` inside is read) or one
    ledger file.  Later lines win, matching
    :func:`repro.telemetry.latest_scalars` without importing the
    package.  Malformed lines and non-ledger files are skipped — absence
    of ledgers is normal for a results directory.
    """
    if path.is_dir():
        files: Iterable[pathlib.Path] = sorted(path.glob("*.jsonl"))
    elif path.is_file() and path.suffix == ".jsonl":
        files = [path]
    else:
        return {}

    merged: Dict[str, float] = {}
    for file in files:
        try:
            lines = file.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict):
                continue
            experiment = entry.get("experiment")
            scalars = entry.get("scalars")
            if not isinstance(experiment, str) or not isinstance(scalars, dict):
                continue
            for key, value in scalars.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    merged[f"{experiment}.{key}"] = float(value)
    return merged


def load_histograms(path: pathlib.Path) -> Dict[str, float]:
    """Flatten ``histograms`` sections into ``{"file:metric.q": value}``.

    Benchmark artefacts may carry per-metric latency summaries
    (``{"batch.block_s": {"count": ..., "p50": ..., "p99": ...}}``); the
    headline quantiles are flattened for an informational diff.  Older
    artefacts without the section contribute nothing — the diff renders
    ``n/a`` for their side, mirroring the ``memory`` section.
    """
    if path.is_dir():
        files: Iterable[pathlib.Path] = sorted(path.glob("*.json"))
    elif path.is_file():
        files = [path]
    else:
        return {}

    metrics: Dict[str, float] = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        section = payload.get("histograms") if isinstance(payload, dict) else None
        if not isinstance(section, dict):
            continue
        name = payload.get("name", file.stem)
        for metric, summary in section.items():
            if not isinstance(summary, dict):
                continue
            for quantile in ("p50", "p99"):
                value = summary.get(quantile)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    metrics[f"{name}:{metric}.{quantile}"] = float(value)
    return metrics


def load_service_metrics(path: pathlib.Path) -> Dict[str, float]:
    """Flatten ``service.metrics`` maps into ``{"file:metric": value}``.

    Load-generation artefacts (``repro loadgen --out``) carry a nested
    ``service`` section with the flat RED metrics the SLO spec judges;
    ordinary benchmark artefacts have no such section and contribute
    nothing — the diff renders ``n/a`` for their side, never a KeyError.
    """
    if path.is_dir():
        files: Iterable[pathlib.Path] = sorted(path.glob("*.json"))
    elif path.is_file():
        files = [path]
    else:
        return {}

    metrics: Dict[str, float] = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        service = payload.get("service") if isinstance(payload, dict) else None
        if not isinstance(service, dict):
            continue
        section = service.get("metrics")
        if not isinstance(section, dict):
            continue
        name = payload.get("name", file.stem)
        for key, value in section.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"{name}:{key}"] = float(value)
    return metrics


def compare_memory(
    old: Dict[str, float], new: Dict[str, float]
) -> List[Tuple[str, object, object]]:
    """Pair up two ``memory`` sections over the *union* of their keys.

    Unlike :func:`compare`, one-sided metrics are kept, with ``None``
    standing in for the missing side: memory fields are newer than many
    archived artefacts, and an old baseline without them must still diff
    cleanly (the renderer prints ``n/a``, never raises).
    """
    rows: List[Tuple[str, object, object]] = []
    for key in sorted(set(old) | set(new)):
        rows.append((key, old.get(key), new.get(key)))
    return rows


def tolerant_change(a, b):
    """Relative change, or ``None`` when it cannot be computed.

    The one place the optional-section tolerance rule lives: a missing
    side (older artefact without the section) or a zero baseline yields
    ``None`` — rendered as ``n/a``, never a KeyError, and never counted
    as a regression even under ``--gate``.
    """
    if a is None or b is None or a == 0.0:
        return None
    return (b - a) / abs(a)


def print_optional_section(
    title: str,
    rows: List[Tuple[str, object, object]],
    threshold=None,
    bigger_is_better: bool = False,
) -> List[str]:
    """Print one tolerant (union-keyed) section; return gated regressions.

    With ``threshold=None`` (the default informational mode) nothing is
    flagged.  With a threshold (``--gate``), a metric present on *both*
    sides that moved in the bad direction beyond it is returned as a
    regression; one-sided ``n/a`` rows still never gate.  The bad
    direction is growth for cost metrics (seconds, bytes — the default)
    and *shrinkage* for ``bigger_is_better`` throughput metrics
    (``roofline`` chips x years per second).
    """
    regressions: List[str] = []
    if not rows:
        return regressions
    width = max(len(key) for key, *_ in rows)
    print(f"\n{title}:")
    for key, a, b in rows:
        a_text = "n/a" if a is None else f"{a:.6g}"
        b_text = "n/a" if b is None else f"{b:.6g}"
        change = tolerant_change(a, b)
        change_text = "    n/a" if change is None else f"{change:>+7.1%}"
        flag = ""
        if threshold is not None and change is not None:
            bad = -change if bigger_is_better else change
            if bad > threshold:
                flag = "  REGRESSION"
                regressions.append(key)
        print(f"{key:<{width}}  {a_text:>12}  {b_text:>12}  {change_text}{flag}")
    return regressions


def compare(
    old: Dict[str, float], new: Dict[str, float], threshold: float
) -> Tuple[List[Tuple[str, float, float, float]], List[str], List[str]]:
    """Pair up the two sets.

    Returns ``(rows, only_old, only_new)`` where each row is
    ``(metric, old_value, new_value, relative_change)``.
    """
    rows = []
    for key in sorted(set(old) & set(new)):
        a, b = old[key], new[key]
        if a == 0.0:
            change = 0.0 if b == 0.0 else float("inf")
        else:
            change = (b - a) / abs(a)
        rows.append((key, a, b, change))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    return rows, only_old, only_new


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two benchmark result sets, flag >threshold regressions"
    )
    parser.add_argument("baseline", type=pathlib.Path, help="baseline results dir/file")
    parser.add_argument("candidate", type=pathlib.Path, help="candidate results dir/file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative growth that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write the diff (rows, counters, regressions) as JSON",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="also gate on memory/histogram-quantile growth and roofline "
        "throughput drops beyond the threshold (one-sided n/a rows still "
        "never gate); counters and ledger scalars stay informational",
    )
    args = parser.parse_args(argv)

    try:
        old = load_results(args.baseline)
        new = load_results(args.candidate)
        old_counters = load_results(args.baseline, section="counters")
        new_counters = load_results(args.candidate, section="counters")
        old_memory = load_results(args.baseline, section="memory")
        new_memory = load_results(args.candidate, section="memory")
        old_roofline = load_results(args.baseline, section="roofline")
        new_roofline = load_results(args.candidate, section="roofline")
        old_hist = load_histograms(args.baseline)
        new_hist = load_histograms(args.candidate)
        old_service = load_service_metrics(args.baseline)
        new_service = load_service_metrics(args.candidate)
        old_ledger = load_ledger_scalars(args.baseline)
        new_ledger = load_ledger_scalars(args.candidate)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not old or not new:
        print("error: one of the result sets holds no benchmark metrics", file=sys.stderr)
        return 2

    rows, only_old, only_new = compare(old, new, args.threshold)
    if not rows:
        print("error: the result sets share no metrics", file=sys.stderr)
        return 2
    counter_rows, _, _ = compare(old_counters, new_counters, args.threshold)
    memory_rows = compare_memory(old_memory, new_memory)
    roofline_rows = compare_memory(old_roofline, new_roofline)
    histogram_rows = compare_memory(old_hist, new_hist)
    service_rows = compare_memory(old_service, new_service)
    ledger_rows, _, _ = compare(old_ledger, new_ledger, args.threshold)

    width = max(len(key) for key, *_ in rows)
    regressions = []
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  {'change':>8}")
    for key, a, b, change in rows:
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSION"
            regressions.append(key)
        elif change < -args.threshold:
            flag = "  improved"
        print(f"{key:<{width}}  {a:>12.6g}  {b:>12.6g}  {change:>+7.1%}{flag}")

    if counter_rows:
        cwidth = max(len(key) for key, *_ in counter_rows)
        print("\nwork done (telemetry counters, informational):")
        for key, a, b, change in counter_rows:
            print(f"{key:<{cwidth}}  {a:>12.6g}  {b:>12.6g}  {change:>+7.1%}")

    gate_threshold = args.threshold if args.gate else None
    mode = "gated" if args.gate else "informational"
    memory_regressions = print_optional_section(
        f"memory (peak RSS / footprint, {mode})",
        memory_rows,
        threshold=gate_threshold,
    )
    roofline_regressions = print_optional_section(
        f"roofline throughput (chips x years per second, {mode}; "
        "bigger is better — a drop gates)",
        roofline_rows,
        threshold=gate_threshold,
        bigger_is_better=True,
    )
    histogram_regressions = print_optional_section(
        f"latency histograms (p50/p99, {mode})",
        histogram_rows,
        threshold=gate_threshold,
    )
    regressions += (
        memory_regressions + roofline_regressions + histogram_regressions
    )
    # service RED metrics never gate, even under --gate: the map mixes
    # directions (rates up-good, latencies down-good) — SLOs judge them
    print_optional_section(
        "service RED metrics (rate/availability/latency, informational)",
        service_rows,
        threshold=None,
    )

    if ledger_rows:
        lwidth = max(len(key) for key, *_ in ledger_rows)
        print("\nledger scalars (experiment results, informational):")
        for key, a, b, change in ledger_rows:
            print(f"{key:<{lwidth}}  {a:>12.6g}  {b:>12.6g}  {change:>+7.1%}")

    for key in only_old:
        print(f"note: {key} only in baseline")
    for key in only_new:
        print(f"note: {key} only in candidate")

    if args.json is not None:
        payload = {
            "threshold": args.threshold,
            "rows": [
                {
                    "metric": key,
                    "baseline": a,
                    "candidate": b,
                    "change": change,
                    "regression": change > args.threshold,
                }
                for key, a, b, change in rows
            ],
            "counters": [
                {"metric": key, "baseline": a, "candidate": b, "change": change}
                for key, a, b, change in counter_rows
            ],
            "memory": [
                {
                    "metric": key,
                    "baseline": a,
                    "candidate": b,
                    "change": tolerant_change(a, b),
                    "regression": key in memory_regressions,
                }
                for key, a, b in memory_rows
            ],
            "roofline": [
                {
                    "metric": key,
                    "baseline": a,
                    "candidate": b,
                    "change": tolerant_change(a, b),
                    "regression": key in roofline_regressions,
                }
                for key, a, b in roofline_rows
            ],
            "histograms": [
                {
                    "metric": key,
                    "baseline": a,
                    "candidate": b,
                    "change": tolerant_change(a, b),
                    "regression": key in histogram_regressions,
                }
                for key, a, b in histogram_rows
            ],
            "service": [
                {
                    "metric": key,
                    "baseline": a,
                    "candidate": b,
                    "change": tolerant_change(a, b),
                }
                for key, a, b in service_rows
            ],
            "ledger": [
                {"metric": key, "baseline": a, "candidate": b, "change": change}
                for key, a, b, change in ledger_rows
            ],
            "only_baseline": only_old,
            "only_candidate": only_new,
            "gate": args.gate,
            "regressions": sorted(regressions),
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"json diff written to {args.json}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%}: {', '.join(regressions)}"
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
